package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"pimdsm/internal/proto"
)

// This file is the cross-run perf-diff engine: serializable snapshots of the
// deep-telemetry recorders (Profile, Spans, Registry), Compare over two such
// snapshots with significance thresholds, and Timeline over the committed
// BENCH_*.json series. Everything here is cold-path analysis — nothing runs
// while a simulation records, so the record-only and zero-alloc guarantees
// of the recorders are untouched.

// ProfileSnapshot is the machine-readable aggregate of a Profile: the cycle
// totals a diff needs, without the per-node and per-link detail the live
// report renders. Snapshots from several runs merge additively (Merge), so a
// multi-configuration job folds into one artifact. JSON field order is fixed
// and maps marshal with sorted keys, so the serialized form is deterministic.
type ProfileSnapshot struct {
	Label string `json:"label,omitempty"`
	// ExecCycles sums the measured windows of every merged run.
	ExecCycles uint64 `json:"exec_cycles"`
	// PNodes counts P-nodes folded in (summed across merged runs).
	PNodes int `json:"p_nodes"`
	// PCycles maps PClass label -> total cycles across P-nodes and runs.
	// Per run the buckets sum to exec × nodes, so shares are comparable
	// across runs of different lengths.
	PCycles map[string]uint64 `json:"p_cycles,omitempty"`
	// HandlerCycles maps HandlerClass label -> cycles across all covered
	// node resources — the D-node occupancy split of the paper's argument.
	HandlerCycles map[string]uint64 `json:"handler_cycles,omitempty"`
	// MeshBusyCycles and MeshQueuedCycles total the link accounting.
	MeshBusyCycles   uint64 `json:"mesh_busy_cycles,omitempty"`
	MeshQueuedCycles uint64 `json:"mesh_queued_cycles,omitempty"`
	// Hops counts link acquisitions observed.
	Hops uint64 `json:"hops,omitempty"`
}

// SnapshotProfile folds a completed Profile into its serializable aggregate.
func SnapshotProfile(p *Profile) *ProfileSnapshot {
	s := &ProfileSnapshot{
		Label:         p.meta,
		ExecCycles:    uint64(p.exec),
		PCycles:       map[string]uint64{},
		HandlerCycles: map[string]uint64{},
		Hops:          p.hopCount,
	}
	for n := range p.pn {
		if !p.isP[n] {
			continue
		}
		s.PNodes++
		for c := PClass(0); c < NumPClasses; c++ {
			s.PCycles[c.String()] += uint64(p.pn[n][c])
		}
	}
	for _, n := range p.handlerNodes() {
		for r := NodeRes(0); r < NumNodeRes; r++ {
			for c := HandlerClass(0); c < NumHandlerClasses; c++ {
				if v := p.nodes[n][r][c]; v > 0 {
					s.HandlerCycles[c.String()] += uint64(v)
				}
			}
		}
	}
	for i := range p.linkBusy {
		s.MeshBusyCycles += uint64(p.linkBusy[i])
		s.MeshQueuedCycles += uint64(p.linkWaited[i])
	}
	return s
}

// Merge folds another snapshot into s (additive on every total).
func (s *ProfileSnapshot) Merge(o *ProfileSnapshot) {
	if o == nil {
		return
	}
	if s.Label == "" {
		s.Label = o.Label
	} else if o.Label != "" && s.Label != o.Label {
		s.Label += "+" + o.Label
	}
	s.ExecCycles += o.ExecCycles
	s.PNodes += o.PNodes
	for k, v := range o.PCycles {
		if s.PCycles == nil {
			s.PCycles = map[string]uint64{}
		}
		s.PCycles[k] += v
	}
	for k, v := range o.HandlerCycles {
		if s.HandlerCycles == nil {
			s.HandlerCycles = map[string]uint64{}
		}
		s.HandlerCycles[k] += v
	}
	s.MeshBusyCycles += o.MeshBusyCycles
	s.MeshQueuedCycles += o.MeshQueuedCycles
	s.Hops += o.Hops
}

// SpanBreakdown is the serializable aggregate of a span recorder: average
// cycles per retired transaction attributed to each protocol phase, summed
// over both directions and all satisfaction classes — the decomposition the
// figure drivers print, in diffable form.
type SpanBreakdown struct {
	Label   string  `json:"label,omitempty"`
	Retired uint64  `json:"retired"`
	Bad     uint64  `json:"bad,omitempty"`
	AvgLat  float64 `json:"avg_lat"`
	// Phases maps Phase label -> average cycles per transaction. The values
	// sum to AvgLat because every span's buckets sum to its latency.
	Phases map[string]float64 `json:"phases"`
	// Queued is the mesh-link queueing overlay (inside the phases, not
	// additional latency).
	Queued float64 `json:"queued,omitempty"`
}

// SnapshotSpans aggregates a recorder over both directions and all
// satisfaction classes into its serializable breakdown.
func SnapshotSpans(s *Spans) *SpanBreakdown {
	b := &SpanBreakdown{
		Retired: s.Retired(),
		Bad:     s.Bad(),
		Phases:  map[string]float64{},
	}
	if b.Retired == 0 {
		return b
	}
	n := float64(b.Retired)
	for _, wr := range [2]bool{false, true} {
		for c := proto.LatClass(0); c < proto.NumLatClasses; c++ {
			for p := Phase(0); p < NumPhases; p++ {
				v := float64(s.PhaseCycles(wr, c, p)) / n
				b.Phases[p.String()] += v
				b.AvgLat += v
			}
			b.Queued += float64(s.QueuedCycles(wr, c)) / n
		}
	}
	return b
}

// ParseMetricsJSON flattens a Registry.WriteJSON document into scalars:
// counters and gauges under their own names, histograms as name.count and
// name.sum. The flat map is what Compare diffs.
func ParseMetricsJSON(data []byte) (map[string]float64, error) {
	var doc struct {
		Metrics map[string]json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: bad metrics JSON: %w", err)
	}
	out := make(map[string]float64, len(doc.Metrics))
	for name, raw := range doc.Metrics {
		var v float64
		if json.Unmarshal(raw, &v) == nil {
			out[name] = v
			continue
		}
		var h struct {
			Count uint64 `json:"count"`
			Sum   uint64 `json:"sum"`
		}
		if json.Unmarshal(raw, &h) == nil {
			out[name+".count"] = float64(h.Count)
			out[name+".sum"] = float64(h.Sum)
		}
	}
	return out, nil
}

// RunDump is one run's flight-recorder state as Compare consumes it. Any of
// the three sections may be nil/empty; Compare diffs what both sides have.
type RunDump struct {
	Label   string             `json:"label"`
	Spans   *SpanBreakdown     `json:"spans,omitempty"`
	Profile *ProfileSnapshot   `json:"profile,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// CompareOptions tunes significance. The zero value picks the defaults.
type CompareOptions struct {
	// MinRel is the relative-change significance threshold (default 0.05:
	// a bucket must move ≥5% of its A-side value, or appear/disappear).
	MinRel float64
	// MinShare ignores buckets contributing less than this fraction of
	// their section's total on both sides (default 0.01). Noise floors out.
	MinShare float64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.MinRel <= 0 {
		o.MinRel = 0.05
	}
	if o.MinShare <= 0 {
		o.MinShare = 0.01
	}
	return o
}

// DeltaRow is one diffed quantity. Rel is (B-A)/A (±Inf encoded as ±1e30
// when A is zero and B isn't, so the row still marshals as JSON).
type DeltaRow struct {
	Name        string  `json:"name"`
	A           float64 `json:"a"`
	B           float64 `json:"b"`
	Delta       float64 `json:"delta"`
	Rel         float64 `json:"rel"`
	Significant bool    `json:"significant,omitempty"`
}

// CompareReport is the typed outcome of diffing two runs. Rows within each
// section are ordered by |Delta| descending, so the first significant row of
// Phases is the dominant mover.
type CompareReport struct {
	LabelA string `json:"label_a"`
	LabelB string `json:"label_b"`

	// Phases diffs average cycles per transaction per protocol phase
	// (from the span decompositions).
	Phases []DeltaRow `json:"phases,omitempty"`
	// AvgLat diffs the end-to-end average transaction latency.
	AvgLat *DeltaRow `json:"avg_lat,omitempty"`
	// PShares diffs P-node bucket shares (percent of exec) and HandlerShares
	// the D-node handler-class shares (percent of handler cycles), both from
	// the profile snapshots.
	PShares       []DeltaRow `json:"p_shares,omitempty"`
	HandlerShares []DeltaRow `json:"handler_shares,omitempty"`
	// Metrics diffs the flattened metric registries.
	Metrics []DeltaRow `json:"metrics,omitempty"`

	// DominantPhase names the phase with the largest significant average-
	// cycle increase (the "dominant regressed phase"); empty when no phase
	// regressed significantly. DominantResource is the machine resource that
	// phase runs on; Verdict is the one-line human summary.
	DominantPhase    string `json:"dominant_phase,omitempty"`
	DominantResource string `json:"dominant_resource,omitempty"`
	Verdict          string `json:"verdict"`
}

// bigRel stands in for an infinite relative change (A was zero) so reports
// stay valid JSON.
const bigRel = 1e30

func deltaRow(name string, a, b float64) DeltaRow {
	r := DeltaRow{Name: name, A: a, B: b, Delta: b - a}
	switch {
	case a != 0:
		r.Rel = (b - a) / a
	case b > 0:
		r.Rel = bigRel
	case b < 0:
		r.Rel = -bigRel
	}
	return r
}

// diffMaps diffs two name->value maps: one row per name present on either
// side, significance from opt, ordered by |Delta| descending (ties by name).
func diffMaps(a, b map[string]float64, opt CompareOptions) []DeltaRow {
	var totalA, totalB float64
	for _, v := range a {
		totalA += v
	}
	for _, v := range b {
		totalB += v
	}
	names := make(map[string]struct{}, len(a)+len(b))
	for k := range a {
		names[k] = struct{}{}
	}
	for k := range b {
		names[k] = struct{}{}
	}
	rows := make([]DeltaRow, 0, len(names))
	for name := range names {
		r := deltaRow(name, a[name], b[name])
		share := 0.0
		if totalA > 0 {
			share = abs(r.A) / totalA
		}
		if totalB > 0 && abs(r.B)/totalB > share {
			share = abs(r.B) / totalB
		}
		r.Significant = share >= opt.MinShare && abs(r.Rel) >= opt.MinRel
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		di, dj := abs(rows[i].Delta), abs(rows[j].Delta)
		if di != dj {
			return di > dj
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// shares converts cycle totals to percent-of-total, so runs of different
// lengths diff on where the cycles went rather than how many there were.
func shares(m map[string]uint64) map[string]float64 {
	var total uint64
	for _, v := range m {
		total += v
	}
	out := make(map[string]float64, len(m))
	if total == 0 {
		return out
	}
	for k, v := range m {
		out[k] = 100 * float64(v) / float64(total)
	}
	return out
}

// Compare diffs two runs' flight-recorder dumps: span phase decompositions
// (average cycles per transaction), profile bucket shares, and metric
// registries, applying opt's significance thresholds and naming the dominant
// regressed phase. Sections missing from either dump are skipped.
func Compare(a, b RunDump, opt CompareOptions) *CompareReport {
	opt = opt.withDefaults()
	rep := &CompareReport{LabelA: a.Label, LabelB: b.Label}
	if rep.LabelA == "" {
		rep.LabelA = "A"
	}
	if rep.LabelB == "" {
		rep.LabelB = "B"
	}

	if a.Spans != nil && b.Spans != nil {
		rep.Phases = diffMaps(a.Spans.Phases, b.Spans.Phases, opt)
		al := deltaRow("avg-lat", a.Spans.AvgLat, b.Spans.AvgLat)
		al.Significant = abs(al.Rel) >= opt.MinRel
		rep.AvgLat = &al
	}
	if a.Profile != nil && b.Profile != nil {
		rep.PShares = diffMaps(shares(a.Profile.PCycles), shares(b.Profile.PCycles), opt)
		rep.HandlerShares = diffMaps(shares(a.Profile.HandlerCycles), shares(b.Profile.HandlerCycles), opt)
	}
	if len(a.Metrics) > 0 && len(b.Metrics) > 0 {
		rep.Metrics = diffMaps(a.Metrics, b.Metrics, opt)
	}

	// The dominant regressed phase: largest significant per-transaction
	// cycle increase. Falls back to the largest significant mover in either
	// direction, then to "no significant phase delta".
	var regressed, mover *DeltaRow
	for i := range rep.Phases {
		r := &rep.Phases[i]
		if !r.Significant {
			continue
		}
		if mover == nil {
			mover = r
		}
		if r.Delta > 0 && regressed == nil {
			regressed = r
		}
	}
	switch {
	case regressed != nil:
		rep.DominantPhase = regressed.Name
		rep.DominantResource = phaseResourceByName(regressed.Name)
		rep.Verdict = fmt.Sprintf("dominant regressed phase: %s (%+.1f cycles/txn, %s) — %s",
			regressed.Name, regressed.Delta, relString(regressed.Rel), rep.DominantResource)
	case mover != nil:
		rep.DominantPhase = mover.Name
		rep.DominantResource = phaseResourceByName(mover.Name)
		rep.Verdict = fmt.Sprintf("dominant phase delta: %s improved (%+.1f cycles/txn, %s) — %s",
			mover.Name, mover.Delta, relString(mover.Rel), rep.DominantResource)
	case rep.Phases != nil:
		rep.Verdict = "no significant phase delta"
	default:
		rep.Verdict = "no span decomposition on both sides; phase verdict unavailable"
	}
	return rep
}

// phaseResourceByName resolves a phase display name back to the machine
// resource it waits on (see phaseResource).
func phaseResourceByName(name string) string {
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() == name {
			return phaseResource(p)
		}
	}
	return name
}

func relString(rel float64) string {
	if rel >= bigRel {
		return "new"
	}
	if rel <= -bigRel {
		return "gone"
	}
	return fmt.Sprintf("%+.1f%%", 100*rel)
}

// WriteText renders the report as aligned columns. Sections are elided when
// empty; insignificant metric rows are summarized rather than listed.
func (r *CompareReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "perf diff: %s -> %s\n", r.LabelA, r.LabelB)
	writeSection := func(title, unit string, rows []DeltaRow, keepAll bool) {
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(w, "\n%s (%s):\n", title, unit)
		fmt.Fprintf(w, "  %-24s %14s %14s %12s %10s\n", "name", r.LabelA, r.LabelB, "delta", "rel")
		hidden := 0
		for _, row := range rows {
			if !keepAll && !row.Significant {
				hidden++
				continue
			}
			mark := " "
			if row.Significant {
				mark = "*"
			}
			fmt.Fprintf(w, "%s %-24s %14.2f %14.2f %+12.2f %10s\n",
				mark, row.Name, row.A, row.B, row.Delta, relString(row.Rel))
		}
		if hidden > 0 {
			fmt.Fprintf(w, "  (%d insignificant rows hidden)\n", hidden)
		}
	}
	writeSection("phase decomposition", "avg cycles/txn", r.Phases, true)
	if r.AvgLat != nil {
		fmt.Fprintf(w, "  %-26s %14.2f %14.2f %+12.2f %10s\n",
			"end-to-end avg latency", r.AvgLat.A, r.AvgLat.B, r.AvgLat.Delta, relString(r.AvgLat.Rel))
	}
	writeSection("P-node buckets", "% of exec", r.PShares, true)
	writeSection("D-node handler classes", "% of handler cycles", r.HandlerShares, true)
	writeSection("metrics", "value", r.Metrics, false)
	fmt.Fprintf(w, "\n%s\n", r.Verdict)
}

// --- BENCH_*.json trajectory ---

// BenchRun mirrors one cmd/benchjson measurement row. Shards and GoMaxProcs
// are optional provenance (absent in snapshots before 2026-08-08).
type BenchRun struct {
	Arch         string  `json:"arch"`
	App          string  `json:"app"`
	Shards       int     `json:"shards,omitempty"`
	GoMaxProcs   int     `json:"gomaxprocs,omitempty"`
	WallMs       float64 `json:"wall_ms"`
	ExecCycles   uint64  `json:"exec_cycles"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// BenchDoc mirrors one committed BENCH_<date>.json snapshot. Header fields
// added over time (gomaxprocs, shards, repeat) are optional so the earliest
// snapshots still parse.
type BenchDoc struct {
	Date       string     `json:"date"`
	Commit     string     `json:"commit,omitempty"`
	Go         string     `json:"go"`
	CPUs       int        `json:"cpus"`
	GoMaxProcs int        `json:"gomaxprocs,omitempty"`
	Scale      float64    `json:"scale"`
	Threads    int        `json:"threads"`
	Shards     int        `json:"shards,omitempty"`
	Repeat     int        `json:"repeat,omitempty"`
	Runs       []BenchRun `json:"runs"`
}

// ParseBenchDoc parses and validates one BENCH snapshot: it must carry a
// date and at least one run, and every run needs an arch, an app and a
// positive wall time. Malformed snapshots are an error, never a silent skip
// — `make bench-diff` is advisory about perf but strict about file health.
func ParseBenchDoc(data []byte) (*BenchDoc, error) {
	var doc BenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: bad BENCH snapshot: %w", err)
	}
	if doc.Date == "" {
		return nil, fmt.Errorf("obs: BENCH snapshot has no date")
	}
	if len(doc.Runs) == 0 {
		return nil, fmt.Errorf("obs: BENCH snapshot %s has no runs", doc.Date)
	}
	for i, r := range doc.Runs {
		if r.Arch == "" || r.App == "" {
			return nil, fmt.Errorf("obs: BENCH snapshot %s run %d missing arch or app", doc.Date, i)
		}
		if r.WallMs <= 0 {
			return nil, fmt.Errorf("obs: BENCH snapshot %s run %d (%s/%s) has non-positive wall_ms", doc.Date, i, r.Arch, r.App)
		}
	}
	return &doc, nil
}

// TimelinePoint is one snapshot's measurement of a (arch, app) pair.
type TimelinePoint struct {
	Date         string  `json:"date"`
	Commit       string  `json:"commit,omitempty"`
	Scale        float64 `json:"scale"`
	WallMs       float64 `json:"wall_ms"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// TimelineSeries is one (arch, app) pair's trajectory across snapshots, in
// date order. Regressed flags a significant throughput drop between the two
// newest points; Note explains caveats (e.g. the workload scale changed, so
// wall times are not comparable — cycles/sec still roughly are).
type TimelineSeries struct {
	Arch      string          `json:"arch"`
	App       string          `json:"app"`
	Points    []TimelinePoint `json:"points"`
	Regressed bool            `json:"regressed,omitempty"`
	Note      string          `json:"note,omitempty"`
}

// TimelineReport is the cross-snapshot perf trajectory: one series per
// (arch, app) pair plus the flagged regressions.
type TimelineReport struct {
	Threshold   float64          `json:"threshold"`
	Series      []TimelineSeries `json:"series"`
	Regressions []string         `json:"regressions,omitempty"`
}

// Timeline builds the per-(arch, app) trajectory across BENCH snapshots and
// flags pairs whose simulator throughput (cycles/sec) dropped by more than
// threshold (default 0.10) between the two newest snapshots covering the
// pair. Host throughput is noisy and machine-dependent, so the flags are
// advisory — the report is for reading, not for failing CI.
func Timeline(docs []*BenchDoc, threshold float64) *TimelineReport {
	if threshold <= 0 {
		threshold = 0.10
	}
	sorted := append([]*BenchDoc(nil), docs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Date < sorted[j].Date })

	type key struct{ arch, app string }
	series := map[key]*TimelineSeries{}
	var order []key
	for _, doc := range sorted {
		for _, r := range doc.Runs {
			k := key{r.Arch, r.App}
			s := series[k]
			if s == nil {
				s = &TimelineSeries{Arch: r.Arch, App: r.App}
				series[k] = s
				order = append(order, k)
			}
			s.Points = append(s.Points, TimelinePoint{
				Date: doc.Date, Commit: doc.Commit, Scale: doc.Scale,
				WallMs: r.WallMs, CyclesPerSec: r.CyclesPerSec,
			})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].arch != order[j].arch {
			return order[i].arch < order[j].arch
		}
		return order[i].app < order[j].app
	})

	rep := &TimelineReport{Threshold: threshold}
	for _, k := range order {
		s := series[k]
		if n := len(s.Points); n >= 2 {
			prev, last := s.Points[n-2], s.Points[n-1]
			if prev.Scale != last.Scale {
				s.Note = fmt.Sprintf("scale changed %g -> %g; wall times not comparable", prev.Scale, last.Scale)
			}
			if prev.CyclesPerSec > 0 {
				drop := (prev.CyclesPerSec - last.CyclesPerSec) / prev.CyclesPerSec
				if drop > threshold {
					s.Regressed = true
					rep.Regressions = append(rep.Regressions,
						fmt.Sprintf("%s/%s: cycles/sec %.3g -> %.3g (-%.0f%%) between %s and %s",
							k.arch, k.app, prev.CyclesPerSec, last.CyclesPerSec, 100*drop, prev.Date, last.Date))
				}
			}
		}
		rep.Series = append(rep.Series, *s)
	}
	return rep
}

// WriteText renders the trajectory as one aligned block per (arch, app)
// pair, flagged regressions last.
func (r *TimelineReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "bench timeline (%d series, regression threshold %.0f%% cycles/sec drop):\n",
		len(r.Series), 100*r.Threshold)
	fmt.Fprintf(w, "  %-5s %-8s %-10s %7s %12s %14s %s\n",
		"arch", "app", "date", "scale", "wall_ms", "cycles/sec", "")
	for _, s := range r.Series {
		for i, p := range s.Points {
			flag := ""
			if i == len(s.Points)-1 && s.Regressed {
				flag = "  << REGRESSED"
			}
			fmt.Fprintf(w, "  %-5s %-8s %-10s %7g %12.2f %14.3g%s\n",
				s.Arch, s.App, p.Date, p.Scale, p.WallMs, p.CyclesPerSec, flag)
		}
		if s.Note != "" {
			fmt.Fprintf(w, "        note: %s\n", s.Note)
		}
	}
	if len(r.Regressions) == 0 {
		fmt.Fprintf(w, "\nno throughput regressions beyond the %.0f%% threshold\n", 100*r.Threshold)
		return
	}
	fmt.Fprintf(w, "\n%d flagged regression(s) — advisory, host throughput is machine-dependent:\n", len(r.Regressions))
	for _, reg := range r.Regressions {
		fmt.Fprintf(w, "  %s\n", reg)
	}
}

// StatusText renders the report to a string (dashboard / log embedding).
func (r *TimelineReport) StatusText() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}
