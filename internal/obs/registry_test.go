package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
	"pimdsm/internal/stats"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	if r.Counter("hits") != c || c.Value() != 5 {
		t.Fatalf("counter identity/value wrong: %d", c.Value())
	}
	g := r.Gauge("depth")
	g.Set(3.5)
	if r.Gauge("depth").Value() != 3.5 {
		t.Fatal("gauge value wrong")
	}
	h := r.Histogram("lat", []sim.Time{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	if h.Count() != 3 || h.Sum() != 5055 {
		t.Fatalf("histogram count=%d sum=%d", h.Count(), h.Sum())
	}
	_, counts := h.Buckets()
	if !reflect.DeepEqual(counts, []uint64{1, 1, 1}) {
		t.Fatalf("bucket counts = %v", counts)
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"hits", "depth", "lat"}) {
		t.Fatalf("Names = %v, want registration order", got)
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic reusing a counter name as a gauge")
		}
	}()
	r.Gauge("x")
}

func TestPow2Bounds(t *testing.T) {
	b := Pow2Bounds(4)
	if !reflect.DeepEqual(b, []sim.Time{1, 2, 4, 8}) {
		t.Fatalf("Pow2Bounds(4) = %v", b)
	}
}

func TestSeriesSampling(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	r.Sample(10)
	c.Add(7)
	r.Sample(20)
	s := r.Series()
	if !reflect.DeepEqual(s.Times, []sim.Time{10, 20}) {
		t.Fatalf("Times = %v", s.Times)
	}
	if s.Rows[0][0] != 0 || s.Rows[1][0] != 7 {
		t.Fatalf("Rows = %v", s.Rows)
	}
}

func TestSampleEveryOnEngine(t *testing.T) {
	var e sim.Engine
	r := NewRegistry()
	c := r.Counter("ticks")
	e.Every(0, 100, func() { c.Inc() })
	rec := r.SampleEvery(&e, 50, 100)
	e.RunUntil(450)
	e.Stop(rec)
	s := r.Series()
	// Samples at 50, 150, 250, 350, 450 see 1, 2, 3, 4, 5 ticks.
	if len(s.Times) != 5 {
		t.Fatalf("samples = %d, want 5", len(s.Times))
	}
	for i, row := range s.Rows {
		if row[0] != float64(i+1) {
			t.Fatalf("sample %d = %v, want %d", i, row[0], i+1)
		}
	}
}

func TestWatchEngine(t *testing.T) {
	var e sim.Engine
	r := NewRegistry()
	for i := 0; i < 10; i++ {
		e.At(sim.Time(i*10), func() {})
	}
	rec := WatchEngine(&e, r, 5, 50)
	e.RunUntil(100)
	e.Stop(rec)
	s := r.Series()
	if len(s.Times) == 0 {
		t.Fatal("no samples")
	}
	if r.Gauge("engine.dispatched").Value() == 0 {
		t.Fatal("dispatched gauge never set")
	}
	if r.Gauge("engine.max_pending").Value() < 10 {
		t.Fatalf("max_pending = %v, want >= 10", r.Gauge("engine.max_pending").Value())
	}
}

func TestCollectMachine(t *testing.T) {
	var m stats.Machine
	m.Read(proto.LatMem, 57)
	m.Read(proto.Lat2Hop, 298)
	m.Write(proto.Lat2Hop, 310)
	m.Invalidations = 4
	m.Pageouts = 2

	r := NewRegistry()
	CollectMachine(r, &m)
	if v := r.Counter("read.count.Memory").Value(); v != 1 {
		t.Fatalf("read.count.Memory = %d", v)
	}
	if v := r.Counter("read.lat.2Hop").Value(); v != 298 {
		t.Fatalf("read.lat.2Hop = %d", v)
	}
	if v := r.Counter("invalidations").Value(); v != 4 {
		t.Fatalf("invalidations = %d", v)
	}
	if v := r.Histogram("read.lat.hist", nil).Count(); v != 2 {
		t.Fatalf("read hist count = %d", v)
	}
	// Collecting a second run accumulates.
	CollectMachine(r, &m)
	if v := r.Counter("pageouts").Value(); v != 4 {
		t.Fatalf("pageouts after two collections = %d", v)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	mk := func() *bytes.Buffer {
		r := NewRegistry()
		r.Counter("a").Add(1)
		r.Gauge("b").Set(2.5)
		r.Histogram("c", Pow2Bounds(3)).Observe(3)
		r.Sample(100)
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	first, second := mk(), mk()
	if first.String() != second.String() {
		t.Fatal("WriteJSON output not deterministic")
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(first.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, first.String())
	}
	if _, ok := doc["metrics"]; !ok {
		t.Fatal("no metrics key")
	}
	if _, ok := doc["series"]; !ok {
		t.Fatal("no series key despite sampling")
	}
}
