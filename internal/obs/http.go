package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Dashboard serves live snapshots of a running simulation over HTTP without
// ever letting an HTTP handler touch simulator state: the simulation
// goroutine renders text sections and Publishes them under a key; handlers
// only copy the latest strings out under the mutex. That keeps the
// simulator single-threaded and race-free while a multi-minute sweep is
// watched from a browser.
//
// Routes: "/" (all sections), "/spans", "/metrics" and "/profile" (single
// well-known sections), "/debug/vars" (expvar), "/debug/pprof/*" (profiling).
type Dashboard struct {
	mu    sync.Mutex
	vals  map[string]string
	order []string // keys in first-publish order, for a stable index page
}

// NewDashboard returns an empty dashboard.
func NewDashboard() *Dashboard {
	return &Dashboard{vals: make(map[string]string)}
}

// Publish replaces the section stored under key. Safe to call from the
// simulation goroutine (or a serialized sweep callback) while HTTP readers
// are active.
func (d *Dashboard) Publish(key, text string) {
	d.mu.Lock()
	if _, ok := d.vals[key]; !ok {
		d.order = append(d.order, key)
	}
	d.vals[key] = text
	d.mu.Unlock()
}

// Section returns the current text under key ("" if never published).
func (d *Dashboard) Section(key string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.vals[key]
}

// Keys returns the published section keys in first-publish order.
func (d *Dashboard) Keys() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.order...)
}

// ProgressFunc returns a Sweep.Progress-shaped callback that publishes a
// one-line completion status under key.
func (d *Dashboard) ProgressFunc(key string) func(done, total, i int) {
	return func(done, total, i int) {
		d.Publish(key, fmt.Sprintf("%d/%d runs complete (last: config %d)\n", done, total, i))
	}
}

func (d *Dashboard) serveSection(key string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s := d.Section(key); s != "" {
			fmt.Fprint(w, s)
			return
		}
		fmt.Fprintf(w, "section %q has not been published yet\n", key)
	}
}

func (d *Dashboard) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	keys := d.Keys()
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	fmt.Fprintf(w, "pimdsm dashboard — sections: %v; also /spans /metrics /profile /debug/vars /debug/pprof/\n\n", sorted)
	for _, k := range keys {
		fmt.Fprintf(w, "== %s ==\n%s\n", k, d.Section(k))
	}
}

// Handler returns the dashboard's mux: published sections, expvar, and
// pprof, all on a private mux so importing this package never mutates
// http.DefaultServeMux.
func (d *Dashboard) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", d.serveIndex)
	mux.HandleFunc("/spans", d.serveSection("spans"))
	mux.HandleFunc("/metrics", d.serveSection("metrics"))
	mux.HandleFunc("/profile", d.serveSection("profile"))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// NewHTTPServer wraps h in an http.Server hardened against slow or
// malicious clients: a connection that trickles its headers, never finishes
// its body, or never reads its response is torn down instead of pinning a
// goroutine and file descriptor forever. The write timeout is generous
// because legitimate responses stream for a while (a CPU profile runs 30s
// by default; a job progress stream follows a whole batch) — clients of
// longer jobs reconnect and resume polling.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       1 * time.Minute,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// ListenAndServe binds addr (e.g. "localhost:8080" or ":0" for an ephemeral
// port) and serves the dashboard on a background goroutine, returning the
// bound address. The listener lives until the process exits: the dashboard
// accompanies a run, it does not outlive one.
func (d *Dashboard) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := NewHTTPServer(d.Handler())
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
