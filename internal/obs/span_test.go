package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
)

// TestSpanAttribution walks one remote transaction through every phase and
// checks the cursor arithmetic: each mark gets the cycles since the previous
// crossing, the remainder after the last mark retires, and the buckets sum
// exactly to the end-to-end latency.
func TestSpanAttribution(t *testing.T) {
	s := NewSpans(16)
	s.Begin(100, 3, 0x1000, false)
	s.Mark(PhaseIssue, 120)
	s.Mark(PhaseNetRequest, 150)
	s.Mark(PhaseDirOcc, 220)
	s.Mark(PhaseOwnerFetch, 260)
	s.Mark(PhaseNetReply, 300)
	s.AddQueued(7)
	s.End(340, proto.Lat3Hop)

	if s.Retired() != 1 || s.Bad() != 0 {
		t.Fatalf("retired %d bad %d, want 1/0 (%v)", s.Retired(), s.Bad(), s.BadSamples())
	}
	kept := s.Kept()
	if len(kept) != 1 {
		t.Fatalf("kept %d spans, want 1", len(kept))
	}
	sp := kept[0]
	want := [NumPhases]sim.Time{
		PhaseIssue:      20,
		PhaseNetRequest: 30,
		PhaseDirOcc:     70,
		PhaseOwnerFetch: 40,
		PhaseNetReply:   40,
		PhaseRetire:     40,
	}
	if sp.Phases != want {
		t.Fatalf("phases %v, want %v", sp.Phases, want)
	}
	if sp.PhaseSum() != sp.Latency() || sp.Latency() != 240 {
		t.Fatalf("phase sum %d vs latency %d, want 240", sp.PhaseSum(), sp.Latency())
	}
	if sp.Queued != 7 || sp.Node != 3 || sp.Addr != 0x1000 || sp.Write {
		t.Fatalf("span metadata wrong: %+v", sp)
	}
	if s.Count(false, proto.Lat3Hop) != 1 ||
		s.PhaseCycles(false, proto.Lat3Hop, PhaseDirOcc) != 70 ||
		s.QueuedCycles(false, proto.Lat3Hop) != 7 {
		t.Fatalf("aggregate tables do not match the retired span")
	}
}

// TestSpanLocalHit: a span with no marks never left the P-node, so the whole
// latency lands in issue.
func TestSpanLocalHit(t *testing.T) {
	s := NewSpans(0)
	s.Begin(10, 0, 0x80, true)
	s.End(53, proto.LatMem)
	sp := s.Kept()[0]
	if sp.Phases[PhaseIssue] != 43 || sp.PhaseSum() != 43 {
		t.Fatalf("local hit phases %v, want all 43 cycles in issue", sp.Phases)
	}
}

// TestSpanOverlappedMark: a mark at or before the cursor attributes nothing
// (the work was overlapped by an earlier phase) but still records that the
// transaction left the P-node, so End's remainder retires instead of landing
// in issue.
func TestSpanOverlappedMark(t *testing.T) {
	s := NewSpans(0)
	s.Begin(100, 0, 0, false)
	s.Mark(PhaseNetRequest, 100) // zero-width: overlapped
	s.End(150, proto.Lat2Hop)
	sp := s.Kept()[0]
	if sp.Phases[PhaseNetRequest] != 0 || sp.Phases[PhaseRetire] != 50 || sp.Phases[PhaseIssue] != 0 {
		t.Fatalf("overlapped-mark phases %v, want the remainder in retire", sp.Phases)
	}
}

// TestSpanBad covers the discard paths: retirement before the cursor and a
// Begin while a span is still open both count as bad without corrupting the
// aggregates.
func TestSpanBad(t *testing.T) {
	s := NewSpans(0)
	s.Begin(100, 0, 0, false)
	s.Mark(PhaseNetRequest, 200)
	s.End(150, proto.Lat2Hop) // before the cursor
	if s.Bad() != 1 || s.Retired() != 0 || len(s.BadSamples()) != 1 {
		t.Fatalf("bad %d retired %d samples %d, want 1/0/1", s.Bad(), s.Retired(), len(s.BadSamples()))
	}
	s.Begin(300, 0, 0, false)
	s.Begin(310, 0, 0, false) // still open: the first is discarded as bad
	s.End(320, proto.LatL1)
	if s.Bad() != 2 || s.Retired() != 1 {
		t.Fatalf("bad %d retired %d, want 2/1", s.Bad(), s.Retired())
	}
}

// TestSpanKeptRing: the keep-ring holds the most recent retirements, oldest
// first.
func TestSpanKeptRing(t *testing.T) {
	s := NewSpans(4)
	for i := 0; i < 10; i++ {
		s.Begin(sim.Time(i*100), 0, uint64(i), false)
		s.End(sim.Time(i*100+10), proto.LatMem)
	}
	kept := s.Kept()
	if len(kept) != 4 {
		t.Fatalf("kept %d, want ring capacity 4", len(kept))
	}
	for i, sp := range kept {
		if want := uint64(6 + i); sp.ID != want {
			t.Fatalf("kept[%d].ID = %d, want %d", i, sp.ID, want)
		}
	}
}

// TestSpanReset: Reset clears counters and tables but keeps capacity and
// enablement.
func TestSpanReset(t *testing.T) {
	s := NewSpans(8)
	s.Begin(0, 0, 0, true)
	s.End(10, proto.LatMem)
	s.Reset()
	if !s.On() || s.Retired() != 0 || s.Count(true, proto.LatMem) != 0 || len(s.Kept()) != 0 {
		t.Fatalf("reset did not clear the recorder")
	}
	s.Begin(0, 0, 0, false)
	s.End(5, proto.LatL1)
	if s.Retired() != 1 {
		t.Fatalf("recorder unusable after reset")
	}
}

// TestSpansBinaryRoundTrip: PDS1 write + read reproduces the counters, the
// aggregate tables, the kept spans, and therefore the rendered breakdown.
func TestSpansBinaryRoundTrip(t *testing.T) {
	s := NewSpans(8)
	s.Begin(100, 3, 0x1000, false)
	s.Mark(PhaseNetRequest, 150)
	s.Mark(PhaseDirOcc, 220)
	s.Mark(PhaseNetReply, 300)
	s.AddQueued(12)
	s.End(340, proto.Lat2Hop)
	s.Begin(400, 5, 0x2000, true)
	s.Mark(PhaseNetRequest, 470)
	s.Mark(PhaseNetReply, 600)
	s.End(700, proto.Lat3Hop)
	s.Begin(800, 1, 0x3000, false)
	s.End(840, proto.LatMem)

	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := ReadSpansBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Retired() != s.Retired() || r.Bad() != s.Bad() {
		t.Fatalf("counters: got %d/%d, want %d/%d", r.Retired(), r.Bad(), s.Retired(), s.Bad())
	}
	for _, w := range []bool{false, true} {
		for c := proto.LatClass(0); c < proto.NumLatClasses; c++ {
			if r.Count(w, c) != s.Count(w, c) || r.QueuedCycles(w, c) != s.QueuedCycles(w, c) {
				t.Fatalf("table mismatch at write=%v class=%v", w, c)
			}
			for p := Phase(0); p < NumPhases; p++ {
				if r.PhaseCycles(w, c, p) != s.PhaseCycles(w, c, p) {
					t.Fatalf("phase cycles mismatch at write=%v class=%v phase=%v", w, c, p)
				}
			}
		}
	}
	if !reflect.DeepEqual(r.Kept(), s.Kept()) {
		t.Fatalf("kept spans differ after round trip")
	}
	var a, b strings.Builder
	s.WriteBreakdown(&a)
	r.WriteBreakdown(&b)
	if a.String() != b.String() {
		t.Fatalf("breakdown differs after round trip:\n%s\nvs\n%s", a.String(), b.String())
	}
	if r.On() {
		t.Fatalf("a loaded recorder must be disabled")
	}
}

// TestSpansBinaryRejects: corrupt headers fail loudly.
func TestSpansBinaryRejects(t *testing.T) {
	if _, err := ReadSpansBinary(strings.NewReader("XXXX0000000000000000000000000000")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadSpansBinary(strings.NewReader("PDS1")); err == nil {
		t.Fatal("truncated header accepted")
	}
}

// spanEmitSite mirrors the guard discipline of every engine annotation site.
func spanEmitSite(s *Spans, i int) {
	if s.On() {
		s.Begin(sim.Time(i), int32(i&31), uint64(i)*128, i&1 == 0)
		s.Mark(PhaseNetRequest, sim.Time(i+40))
		s.Mark(PhaseNetReply, sim.Time(i+200))
		s.End(sim.Time(i+298), proto.Lat2Hop)
	}
}

// TestSpanZeroAlloc pins the allocation contract on both paths: a disabled
// recorder costs one branch per site and the enabled steady state writes only
// into preallocated tables.
func TestSpanZeroAlloc(t *testing.T) {
	nop := NopSpans()
	if n := testing.AllocsPerRun(1000, func() { spanEmitSite(nop, 7) }); n != 0 {
		t.Fatalf("disabled span path allocates %v/op, want 0", n)
	}
	s := NewSpans(1 << 10)
	i := 0
	if n := testing.AllocsPerRun(1000, func() { spanEmitSite(s, i); i++ }); n != 0 {
		t.Fatalf("enabled span path allocates %v/op, want 0", n)
	}
	if s.Bad() != 0 {
		t.Fatalf("emit-site loop produced %d bad spans: %v", s.Bad(), s.BadSamples())
	}
}

// BenchmarkSpanDisabled pins the disabled-path cost next to the trace one.
func BenchmarkSpanDisabled(b *testing.B) {
	s := NopSpans()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spanEmitSite(s, i)
	}
}

// BenchmarkSpanEnabled measures a full begin/mark/end cycle on the recording
// path, still 0 allocs/op.
func BenchmarkSpanEnabled(b *testing.B) {
	s := NewSpans(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spanEmitSite(s, i)
	}
}
