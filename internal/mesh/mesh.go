// Package mesh models the machine's interconnect: a wormhole-routed 2D mesh
// (§3 of the paper) with XY dimension-order routing and per-directed-link
// contention.
//
// The wormhole approximation used here is standard for this class of
// simulator: a message's head advances one router per RouterDelay cycles,
// each directed link on the path is occupied for the message's serialization
// time (size / link bandwidth), and the tail arrives one serialization time
// after the head. Queueing arises naturally from link occupancy. The AGG
// machine uses 2-byte-wide 1 GHz links (2 B/cycle/direction); the NUMA and
// COMA baselines use double-width links so their bisection bandwidth matches
// a 1/1 AGG machine with twice the node count (§3).
package mesh

import (
	"fmt"

	"pimdsm/internal/obs"
	"pimdsm/internal/sim"
)

// Config describes a mesh.
type Config struct {
	Width, Height int
	// BytesPerCycle is the bandwidth of each link, per direction.
	BytesPerCycle uint64
	// RouterDelay is the per-hop head latency in cycles.
	RouterDelay sim.Time
	// HeaderBytes is the size of a message header (control messages are
	// header-only; data messages add the memory line).
	HeaderBytes uint64
}

// DefaultConfig returns the AGG mesh parameters from Table 1, calibrated so
// that an uncontended average-distance 2-hop transaction lands near the
// paper's 298-cycle round trip.
func DefaultConfig(width, height int) Config {
	return Config{
		Width:         width,
		Height:        height,
		BytesPerCycle: 2,
		RouterDelay:   10,
		HeaderBytes:   16,
	}
}

// Stats aggregates traffic counters for a mesh.
type Stats struct {
	Messages   uint64
	Bytes      uint64
	HopsTotal  uint64
	Queued     sim.Time // total queueing delay across all messages
	LatencySum sim.Time // total end-to-end message latency
}

// Diff returns the counters accumulated since the snapshot prev.
func (s Stats) Diff(prev Stats) Stats {
	return Stats{
		Messages:   s.Messages - prev.Messages,
		Bytes:      s.Bytes - prev.Bytes,
		HopsTotal:  s.HopsTotal - prev.HopsTotal,
		Queued:     s.Queued - prev.Queued,
		LatencySum: s.LatencySum - prev.LatencySum,
	}
}

// Mesh is a 2D mesh with one contended resource per directed link.
type Mesh struct {
	cfg Config
	// links[node*4+dir] is the outgoing link of node in direction dir.
	links []sim.Resource
	stats Stats
	trace *obs.Trace
	spans *obs.Spans
	prof  *obs.Profile
}

// Link directions.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

// New builds a mesh. Width and height must be positive.
func New(cfg Config) (*Mesh, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("mesh: invalid dimensions %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.BytesPerCycle == 0 {
		return nil, fmt.Errorf("mesh: zero link bandwidth")
	}
	return &Mesh{
		cfg:   cfg,
		links: make([]sim.Resource, cfg.Width*cfg.Height*4),
		trace: obs.Nop(),
		spans: obs.NopSpans(),
		prof:  obs.NopProfile(),
	}, nil
}

// SetTrace routes per-message trace events (obs.EvMsg) to t; nil disables.
func (m *Mesh) SetTrace(t *obs.Trace) {
	if t == nil {
		t = obs.Nop()
	}
	m.trace = t
}

// SetSpans routes link-queueing attribution to s: while a transaction span
// is open, queueing suffered by any message overlaps the span's lifetime and
// is accumulated as its Queued diagnostic. Nil disables.
func (m *Mesh) SetSpans(s *obs.Spans) {
	if s == nil {
		s = obs.NopSpans()
	}
	m.spans = s
}

// SetProfile routes link-wait observations and queue-depth samples to p and
// sizes its mesh tables; nil disables.
func (m *Mesh) SetProfile(p *obs.Profile) {
	if p == nil {
		p = obs.NopProfile()
	}
	p.SetMeshDims(m.cfg.Width, m.cfg.Height)
	m.prof = p
}

// FoldProfile copies every directed link's resource accounting into p.
// Cold path, called once after a run.
func (m *Mesh) FoldProfile(p *obs.Profile) {
	if p == nil || !p.On() {
		return
	}
	p.SetMeshDims(m.cfg.Width, m.cfg.Height)
	for i := range m.links {
		busy, acq, waited := m.links[i].Utilization()
		p.SetLink(i, busy, acq, waited)
	}
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Mesh {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Nodes returns the number of mesh endpoints.
func (m *Mesh) Nodes() int { return m.cfg.Width * m.cfg.Height }

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Coord returns the (x, y) coordinate of a node index.
func (m *Mesh) Coord(node int) (x, y int) { return node % m.cfg.Width, node / m.cfg.Width }

// NodeAt returns the node index at (x, y).
func (m *Mesh) NodeAt(x, y int) int { return y*m.cfg.Width + x }

// Hops returns the XY-routing hop count between two nodes.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.Coord(src)
	dx, dy := m.Coord(dst)
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// serTime is the serialization time of a message of size bytes.
func (m *Mesh) serTime(bytes uint64) sim.Time {
	return sim.Time((bytes + m.cfg.BytesPerCycle - 1) / m.cfg.BytesPerCycle)
}

// ControlBytes returns the size of a header-only message.
func (m *Mesh) ControlBytes() uint64 { return m.cfg.HeaderBytes }

// DataBytes returns the size of a message carrying a memory line.
func (m *Mesh) DataBytes(lineBytes uint64) uint64 { return m.cfg.HeaderBytes + lineBytes }

// Send injects a message of the given size at src at time now and returns the
// time its tail arrives at dst, acquiring every directed link on the XY path.
// A message to self arrives after one serialization time (the on-chip network
// interface loopback).
func (m *Mesh) Send(now sim.Time, src, dst int, bytes uint64) sim.Time {
	ser := m.serTime(bytes)
	m.stats.Messages++
	m.stats.Bytes += bytes
	if src == dst {
		m.stats.LatencySum += ser
		if m.trace.On() {
			m.trace.Emit(obs.EvMsg, now, ser, int32(src), uint64(dst), bytes)
		}
		return now + ser
	}
	sx, sy := m.Coord(src)
	dx, dy := m.Coord(dst)
	t := now
	hops := 0
	// X dimension first, then Y (deterministic, deadlock-free).
	x, y := sx, sy
	for x != dx {
		dir := dirEast
		nx := x + 1
		if dx < x {
			dir = dirWest
			nx = x - 1
		}
		li := m.NodeAt(x, y)*4 + dir
		start := m.links[li].Acquire(t, ser)
		m.stats.Queued += start - t
		if m.spans.On() {
			m.spans.AddQueued(start - t)
		}
		if m.prof.On() && m.prof.MeshHop(li, start-t) {
			m.prof.MeshSample(li, start, start-t, m.links[li].QueueDepth(start))
		}
		t = start + m.cfg.RouterDelay
		x = nx
		hops++
	}
	for y != dy {
		dir := dirSouth
		ny := y + 1
		if dy < y {
			dir = dirNorth
			ny = y - 1
		}
		li := m.NodeAt(x, y)*4 + dir
		start := m.links[li].Acquire(t, ser)
		m.stats.Queued += start - t
		if m.spans.On() {
			m.spans.AddQueued(start - t)
		}
		if m.prof.On() && m.prof.MeshHop(li, start-t) {
			m.prof.MeshSample(li, start, start-t, m.links[li].QueueDepth(start))
		}
		t = start + m.cfg.RouterDelay
		y = ny
		hops++
	}
	arrive := t + ser
	m.stats.HopsTotal += uint64(hops)
	m.stats.LatencySum += arrive - now
	if m.trace.On() {
		m.trace.Emit(obs.EvMsg, now, arrive-now, int32(src), uint64(dst), uint64(hops)<<32|bytes)
	}
	return arrive
}

// Stats returns a copy of the traffic counters.
func (m *Mesh) Stats() Stats { return m.stats }

// AvgHops returns the mean hop distance over all ordered node pairs — useful
// for latency calibration.
func (m *Mesh) AvgHops() float64 {
	n := m.Nodes()
	if n <= 1 {
		return 0
	}
	total := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			total += m.Hops(s, d)
		}
	}
	return float64(total) / float64(n*n-n)
}
