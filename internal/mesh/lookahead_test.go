package mesh

import "testing"

// TestMinLinkLatencyPinnedToPaper pins the derived lookahead against the
// paper's Table 1 link parameters, so a calibration change that would
// silently alter the partitioned engine's window width fails loudly here.
func TestMinLinkLatencyPinnedToPaper(t *testing.T) {
	// AGG mesh: 2-byte-wide 1 GHz links, 10-cycle router head latency.
	agg := DefaultConfig(8, 4)
	if agg.BytesPerCycle != 2 || agg.RouterDelay != 10 || agg.HeaderBytes != 16 {
		t.Fatalf("Table 1 link parameters drifted: %+v", agg)
	}
	if got := agg.MinLinkLatency(); got != 10 {
		t.Fatalf("AGG MinLinkLatency = %d, want 10 (Table 1 router delay)", got)
	}
	// The NUMA/COMA baselines double link width for equal bisection
	// bandwidth (§3); that changes serialization, not the head latency, so
	// the lookahead bound is unchanged.
	numa := DefaultConfig(8, 4)
	numa.BytesPerCycle *= 2
	if got := numa.MinLinkLatency(); got != 10 {
		t.Fatalf("double-width MinLinkLatency = %d, want 10", got)
	}
	m := MustNew(agg)
	if m.MinLinkLatency() != agg.MinLinkLatency() {
		t.Fatal("Mesh.MinLinkLatency disagrees with its Config")
	}
	// The bound must be a true floor: no uncontended single hop can beat it.
	if hop := agg.RouterDelay; hop < agg.MinLinkLatency() {
		t.Fatalf("lookahead %d exceeds an uncontended hop %d", agg.MinLinkLatency(), hop)
	}
}

// TestZeroRouterDelayRejected: a degenerate config with no per-hop latency
// has zero lookahead, which the partitioned engine must reject as an error.
func TestZeroRouterDelayRejected(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.RouterDelay = 0
	_, err := NewEvents(cfg, 2, Traffic{Pattern: Uniform, Period: 20})
	if err == nil {
		t.Fatal("NewEvents accepted a zero-lookahead mesh")
	}
}
