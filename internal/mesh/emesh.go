// Event-driven partitioned mesh simulation.
//
// Mesh.Send is the synchronous model the paper machines use: it walks a
// message's whole path inside one call, reserving every link on a busy
// calendar. That is exact for execution-driven runs but fundamentally
// serial — the caller's transaction atomically touches links owned by every
// node it passes. Events is the complementary model for large-scale traffic
// studies (256–1024-node meshes, DPU-style fleets): each node is an actor,
// a message advances router-by-router as discrete events, each outgoing
// link's occupancy is state owned by the node it leaves, and the whole
// simulation runs on sim.Sharded with the lookahead derived from
// Config.MinLinkLatency. Per-hop service is in event order (no calendar
// backfill), so results are not comparable to Mesh.Send cycle-for-cycle;
// the determinism oracle for this model is its own single-shard run, which
// every shard count must reproduce bit-identically.
package mesh

import (
	"fmt"

	"pimdsm/internal/sim"
)

// Pattern selects a synthetic traffic pattern.
type Pattern uint8

const (
	// Uniform sends each message to a uniformly random node.
	Uniform Pattern = iota
	// Transpose sends (x, y) -> (y, x): the classic adversarial permutation
	// for XY routing (every message crosses the diagonal).
	Transpose
	// Hotspot sends 1/8 of traffic to the center node, the rest uniformly:
	// a home-directory or root-lock hot block.
	Hotspot
	// NeighborRing sends to the node one row south (wrapping): single-hop
	// nearest-neighbor traffic that crosses every row-band shard boundary,
	// the highest event rate per simulated cycle.
	NeighborRing
)

func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Transpose:
		return "transpose"
	case Hotspot:
		return "hotspot"
	case NeighborRing:
		return "neighbor"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(p))
	}
}

// Traffic configures the synthetic load every node injects.
type Traffic struct {
	Pattern Pattern
	// Period is each node's injection interval in cycles (must be > 0).
	Period sim.Time
	// RequestBytes is the size of an injected message; 0 means a
	// header-only control message (a DSM read request).
	RequestBytes uint64
	// ResponseBytes, when non-zero, makes every delivered request trigger a
	// reply of that payload size back to the source (header added) — the
	// request/data-response shape of directory-protocol traffic.
	ResponseBytes uint64
	// StopInjecting, when non-zero, ends injection at that time; in-flight
	// messages still drain until the run's horizon.
	StopInjecting sim.Time
	// Seed perturbs the per-node generators; runs with equal seeds are
	// bit-identical at every shard count.
	Seed uint64
}

// EventStats aggregates the event-driven mesh's counters. All fields are
// sums of per-node counters folded in node order, so they are independent
// of shard count and scheduling.
type EventStats struct {
	Injected   uint64   // messages entered at their source (incl. replies)
	Delivered  uint64   // messages that reached their destination
	Replies    uint64   // request deliveries that triggered a response
	Bytes      uint64   // sum of message sizes over completed hops
	Hops       uint64   // router-to-router hops taken
	Queued     sim.Time // cycles messages waited for busy outgoing links
	LatencySum sim.Time // end-to-end latency of delivered messages
}

// eNode is one mesh endpoint's actor state: everything a node's handlers
// touch lives here, which is what makes window-parallel execution safe.
type eNode struct {
	h        *sim.NodeHandle
	linkFree [4]sim.Time // next free time of each outgoing link
	rng      uint64
	inject   *sim.Recurring
	st       EventStats
	fp       uint64 // running delivery fingerprint
	_        [24]byte // pad: adjacent nodes land on different shards
}

// Events is an event-driven mesh running on the partitioned engine.
type Events struct {
	cfg   Config
	tr    Traffic
	sh    *sim.Sharded
	nodes []eNode
}

// emsg is one in-flight message, passed by value hop to hop.
type emsg struct {
	src, dst int32
	bytes    uint64
	injected sim.Time
	reply    bool
}

// NewEvents builds an event-driven mesh over cfg partitioned into shards
// row-major bands. The engine lookahead is cfg.MinLinkLatency(); a config
// with zero router delay is rejected (zero lookahead cannot window).
func NewEvents(cfg Config, shards int, tr Traffic) (*Events, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("mesh: invalid dimensions %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.BytesPerCycle == 0 {
		return nil, fmt.Errorf("mesh: zero link bandwidth")
	}
	if tr.Period == 0 {
		return nil, fmt.Errorf("mesh: traffic needs a positive injection period")
	}
	n := cfg.Width * cfg.Height
	sh, err := sim.NewSharded(n, shards, cfg.MinLinkLatency())
	if err != nil {
		return nil, fmt.Errorf("mesh: %w", err)
	}
	e := &Events{cfg: cfg, tr: tr, sh: sh, nodes: make([]eNode, n)}
	for i := 0; i < n; i++ {
		nd := &e.nodes[i]
		nd.h = sh.Node(i)
		nd.rng = splitmix(uint64(i)*0x9e3779b97f4a7c15 + tr.Seed + 1)
		i := i
		// Stagger first injections across the period so window 0 is not a
		// synchronized burst; the offset is node-deterministic.
		first := sim.Time(uint64(i) % uint64(tr.Period))
		nd.inject = nd.h.EveryNamed(first, tr.Period, "inject", func() { e.injectFrom(i) })
	}
	return e, nil
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// next returns the node's next pseudo-random draw. Node-local, so draws are
// consumed in a deterministic order at every shard count.
func (nd *eNode) next() uint64 {
	nd.rng = splitmix(nd.rng)
	return nd.rng
}

func (e *Events) destFor(n int, nd *eNode) int {
	total := len(e.nodes)
	switch e.tr.Pattern {
	case Transpose:
		x, y := n%e.cfg.Width, n/e.cfg.Width
		if x >= e.cfg.Height || y >= e.cfg.Width {
			return (n + total/2) % total // non-square fallback: antipode
		}
		return x*e.cfg.Width + y
	case Hotspot:
		r := nd.next()
		if r&7 == 0 {
			return total / 2
		}
		return int((r >> 3) % uint64(total))
	case NeighborRing:
		return (n + e.cfg.Width) % total
	default: // Uniform
		return int(nd.next() % uint64(total))
	}
}

// injectFrom runs on node n's shard at each injection tick.
func (e *Events) injectFrom(n int) {
	nd := &e.nodes[n]
	now := nd.h.Now()
	if e.tr.StopInjecting != 0 && now >= e.tr.StopInjecting {
		nd.h.Stop(nd.inject)
		return
	}
	bytes := e.tr.RequestBytes
	if bytes == 0 {
		bytes = e.cfg.HeaderBytes
	}
	dst := e.destFor(n, nd)
	nd.st.Injected++
	e.route(n, emsg{src: int32(n), dst: int32(dst), bytes: bytes, injected: now})
}

// serTime is the link serialization time of a message (same formula as the
// synchronous mesh).
func (e *Events) serTime(bytes uint64) sim.Time {
	return sim.Time((bytes + e.cfg.BytesPerCycle - 1) / e.cfg.BytesPerCycle)
}

// route runs on node n's shard and advances msg by one hop (or delivers
// it). All mutated state — n's outgoing links and counters — is owned by n.
func (e *Events) route(n int, msg emsg) {
	nd := &e.nodes[n]
	now := nd.h.Now()
	if int32(n) == msg.dst {
		e.deliver(n, msg)
		return
	}
	x, y := n%e.cfg.Width, n/e.cfg.Width
	dx, dy := int(msg.dst)%e.cfg.Width, int(msg.dst)/e.cfg.Width
	var dir, nb int
	switch { // XY dimension order, as the synchronous mesh routes
	case x < dx:
		dir, nb = dirEast, n+1
	case x > dx:
		dir, nb = dirWest, n-1
	case y < dy:
		dir, nb = dirSouth, n+e.cfg.Width
	default:
		dir, nb = dirNorth, n-e.cfg.Width
	}
	ser := e.serTime(msg.bytes)
	start := now
	if f := nd.linkFree[dir]; f > start {
		start = f
	}
	nd.st.Queued += start - now
	nd.linkFree[dir] = start + ser
	nd.st.Hops++
	nd.st.Bytes += msg.bytes
	head := start + e.cfg.RouterDelay
	if int32(nb) == msg.dst {
		// Final hop: the tail arrives one serialization time after the head.
		nd.h.Post(nb, head+ser, func() { e.deliver(nb, msg) })
		return
	}
	nd.h.Post(nb, head, func() { e.route(nb, msg) })
}

// deliver runs on the destination's shard.
func (e *Events) deliver(n int, msg emsg) {
	nd := &e.nodes[n]
	now := nd.h.Now()
	if msg.src == msg.dst {
		// Loopback: one serialization time through the local interface,
		// accounted at delivery (no link traversed).
		now += e.serTime(msg.bytes)
	}
	nd.st.Delivered++
	nd.st.LatencySum += now - msg.injected
	nd.fp = splitmix(nd.fp ^ uint64(now))
	nd.fp = splitmix(nd.fp ^ uint64(msg.src)<<32 ^ uint64(msg.dst) ^ msg.bytes<<16)
	if !msg.reply && e.tr.ResponseBytes != 0 {
		nd.st.Replies++
		nd.st.Injected++
		e.route(n, emsg{
			src:      int32(n),
			dst:      msg.src,
			bytes:    e.cfg.HeaderBytes + e.tr.ResponseBytes,
			injected: now,
			reply:    true,
		})
	}
}

// Run advances the simulation to the given cycle; it may be called
// repeatedly with increasing horizons.
func (e *Events) Run(until sim.Time) { e.sh.RunUntil(until) }

// Shards returns the number of partitions in use.
func (e *Events) Shards() int { return e.sh.Shards() }

// Lookahead returns the engine's window width (== Config.MinLinkLatency).
func (e *Events) Lookahead() sim.Time { return e.sh.Lookahead() }

// EngineStats exposes the partitioned engine's introspection counters.
func (e *Events) EngineStats() sim.ShardedStats { return e.sh.Stats() }

// Stats folds the per-node counters in node order.
func (e *Events) Stats() EventStats {
	var t EventStats
	for i := range e.nodes {
		st := &e.nodes[i].st
		t.Injected += st.Injected
		t.Delivered += st.Delivered
		t.Replies += st.Replies
		t.Bytes += st.Bytes
		t.Hops += st.Hops
		t.Queued += st.Queued
		t.LatencySum += st.LatencySum
	}
	return t
}

// Fingerprint folds every node's delivery fingerprint in node order: a
// strong order-sensitive digest of (time, src, dst, size) for every
// delivery, used by the bit-identity cross-checks. Equal fingerprints mean
// every message arrived at the same node at the same cycle.
func (e *Events) Fingerprint() uint64 {
	var fp uint64
	for i := range e.nodes {
		fp = splitmix(fp ^ e.nodes[i].fp)
	}
	return fp
}

// AvgLatency returns mean end-to-end delivery latency in cycles.
func (e *Events) AvgLatency() float64 {
	st := e.Stats()
	if st.Delivered == 0 {
		return 0
	}
	return float64(st.LatencySum) / float64(st.Delivered)
}
