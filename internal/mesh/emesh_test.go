package mesh

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"pimdsm/internal/sim"
)

func runEvents(t testing.TB, w, h, shards int, tr Traffic, until sim.Time) *Events {
	t.Helper()
	e, err := NewEvents(DefaultConfig(w, h), shards, tr)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(until)
	return e
}

// TestEventsBitIdenticalAcrossShards is the issue's cross-check: the K=1
// run is the oracle, and K ∈ {2, 4, 8} must reproduce its delivery
// fingerprint (every message at the same node at the same cycle) and every
// aggregate counter, for each traffic pattern.
func TestEventsBitIdenticalAcrossShards(t *testing.T) {
	for _, pat := range []Pattern{Uniform, Transpose, Hotspot, NeighborRing} {
		pat := pat
		t.Run(pat.String(), func(t *testing.T) {
			tr := Traffic{Pattern: pat, Period: 40, ResponseBytes: 128, Seed: 42}
			ref := runEvents(t, 16, 16, 1, tr, 20_000)
			refFP, refStats := ref.Fingerprint(), ref.Stats()
			if refStats.Delivered == 0 {
				t.Fatal("oracle run delivered nothing")
			}
			for _, k := range []int{2, 4, 8} {
				got := runEvents(t, 16, 16, k, tr, 20_000)
				if fp := got.Fingerprint(); fp != refFP {
					t.Errorf("K=%d fingerprint %#x != serial %#x", k, fp, refFP)
				}
				if st := got.Stats(); st != refStats {
					t.Errorf("K=%d stats %+v != serial %+v", k, st, refStats)
				}
				if es := got.EngineStats(); k > 1 && es.CrossShard == 0 {
					t.Errorf("K=%d: no cross-shard messages — bands are not being exercised", k)
				}
			}
		})
	}
}

// TestEventsResumable: running to a horizon in two steps equals one step.
func TestEventsResumable(t *testing.T) {
	tr := Traffic{Pattern: Uniform, Period: 30, Seed: 7}
	one := runEvents(t, 8, 8, 4, tr, 10_000)
	two, err := NewEvents(DefaultConfig(8, 8), 4, tr)
	if err != nil {
		t.Fatal(err)
	}
	two.Run(4_000)
	two.Run(10_000)
	if one.Fingerprint() != two.Fingerprint() || one.Stats() != two.Stats() {
		t.Fatalf("split run diverged: %+v vs %+v", one.Stats(), two.Stats())
	}
}

// TestEventsStopInjecting: injection ends at the configured time but
// in-flight messages drain; totals stay shard-count-independent.
func TestEventsStopInjecting(t *testing.T) {
	tr := Traffic{Pattern: Uniform, Period: 25, StopInjecting: 2_000, Seed: 3}
	ref := runEvents(t, 8, 8, 1, tr, 50_000)
	st := ref.Stats()
	if st.Injected == 0 || st.Delivered != st.Injected {
		t.Fatalf("drain incomplete after horizon: %+v", st)
	}
	got := runEvents(t, 8, 8, 4, tr, 50_000)
	if got.Fingerprint() != ref.Fingerprint() {
		t.Fatal("K=4 drain diverged from serial")
	}
}

// TestEventsQueueingArises: a transpose storm on a small mesh must show
// link queueing (the contention model is live, not a straight-line delay).
func TestEventsQueueingArises(t *testing.T) {
	tr := Traffic{Pattern: Transpose, Period: 8, RequestBytes: 144, Seed: 1}
	e := runEvents(t, 8, 8, 2, tr, 20_000)
	if st := e.Stats(); st.Queued == 0 {
		t.Fatalf("no queueing under a transpose storm: %+v", st)
	}
}

// TestEventsSpeedupSmoke is the `make speedup-smoke` gate: a mid-size
// config at K=1 and K=4 must be bit-identical, and on a host with ≥ 4
// cores K=4 must not be slower than K=1 (generous 1.3x tolerance against
// scheduler noise; on fewer cores only the identity half runs).
func TestEventsSpeedupSmoke(t *testing.T) {
	tr := Traffic{Pattern: Uniform, Period: 20, ResponseBytes: 128, Seed: 9}
	const until = 60_000
	wall := func(k int) (time.Duration, uint64, EventStats) {
		best := time.Duration(1<<63 - 1)
		var fp uint64
		var st EventStats
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			e := runEvents(t, 16, 16, k, tr, until)
			if d := time.Since(start); d < best {
				best = d
			}
			fp, st = e.Fingerprint(), e.Stats()
		}
		return best, fp, st
	}
	w1, fp1, st1 := wall(1)
	w4, fp4, st4 := wall(4)
	if fp1 != fp4 || st1 != st4 {
		t.Fatalf("K=4 diverged from K=1: fp %#x vs %#x, stats %+v vs %+v", fp4, fp1, st4, st1)
	}
	t.Logf("speedup-smoke: K=1 %v, K=4 %v (%.2fx), %d deliveries, GOMAXPROCS=%d",
		w1, w4, float64(w1)/float64(w4), st1.Delivered, runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) >= 4 && w4 > w1+w1*3/10 {
		t.Errorf("K=4 slower than K=1 on a %d-way host: %v vs %v", runtime.GOMAXPROCS(0), w4, w1)
	}
}

// BenchmarkEvents measures the event mesh at paper-plus scales across shard
// counts: 256 nodes (the ROADMAP's beyond-paper target) and 1024 nodes.
func BenchmarkEvents(b *testing.B) {
	for _, sz := range []int{16, 32} {
		for _, k := range []int{1, 2, 4, 8} {
			if k > 1 && k > 2*runtime.GOMAXPROCS(0) {
				continue
			}
			b.Run(fmt.Sprintf("mesh=%dx%d/K=%d", sz, sz, k), func(b *testing.B) {
				tr := Traffic{Pattern: Uniform, Period: 30, ResponseBytes: 128, Seed: 11}
				var delivered uint64
				for i := 0; i < b.N; i++ {
					e := runEvents(b, sz, sz, k, tr, 20_000)
					delivered = e.Stats().Delivered
				}
				b.ReportMetric(float64(delivered), "deliveries")
			})
		}
	}
}
