package mesh

import (
	"testing"
	"testing/quick"

	"pimdsm/internal/sim"
)

func cfg4x4() Config {
	return Config{Width: 4, Height: 4, BytesPerCycle: 2, RouterDelay: 10, HeaderBytes: 16}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Width: 0, Height: 4, BytesPerCycle: 2}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(Config{Width: 4, Height: 4, BytesPerCycle: 0}); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestCoordRoundTrip(t *testing.T) {
	m := MustNew(cfg4x4())
	for n := 0; n < m.Nodes(); n++ {
		x, y := m.Coord(n)
		if m.NodeAt(x, y) != n {
			t.Fatalf("Coord/NodeAt mismatch for %d", n)
		}
	}
}

func TestHops(t *testing.T) {
	m := MustNew(cfg4x4())
	cases := []struct{ s, d, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4, 1},
		{0, 5, 2},
		{0, 15, 6}, // corner to corner in 4x4: 3+3
		{3, 12, 6},
	}
	for _, c := range cases {
		if got := m.Hops(c.s, c.d); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.s, c.d, got, c.want)
		}
	}
}

func TestSendUncontendedLatency(t *testing.T) {
	m := MustNew(cfg4x4())
	// 0 -> 5 is 2 hops; 16B control: ser=8.
	// latency = hops*RouterDelay + ser = 20 + 8 = 28.
	if got := m.Send(100, 0, 5, 16); got != 128 {
		t.Fatalf("arrival = %d, want 128", got)
	}
	// Data message 16+128 = 144B: ser = 72; 2 hops => 20+72 = 92.
	if got := m.Send(200, 0, 5, 144); got != 292 {
		t.Fatalf("data arrival = %d, want 292", got)
	}
}

func TestSendSelf(t *testing.T) {
	m := MustNew(cfg4x4())
	if got := m.Send(50, 3, 3, 16); got != 58 {
		t.Fatalf("self-send arrival = %d, want 58", got)
	}
}

func TestLinkContention(t *testing.T) {
	m := MustNew(cfg4x4())
	// Two messages over the same first link (0 -> east) at the same time:
	// the second queues behind the first's serialization.
	a := m.Send(0, 0, 1, 144) // ser 72: link busy [0,72), arrive 10+72=82
	b := m.Send(0, 0, 1, 144) // starts at 72: arrive 72+10+72=154
	if a != 82 || b != 154 {
		t.Fatalf("arrivals = %d,%d want 82,154", a, b)
	}
	st := m.Stats()
	if st.Messages != 2 || st.Queued != 72 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDisjointPathsNoContention(t *testing.T) {
	m := MustNew(cfg4x4())
	a := m.Send(0, 0, 1, 16)
	b := m.Send(0, 4, 5, 16) // different row, disjoint links
	if a != 18 || b != 18 {
		t.Fatalf("arrivals = %d,%d want 18,18", a, b)
	}
	if q := m.Stats().Queued; q != 0 {
		t.Fatalf("queued = %d, want 0", q)
	}
}

func TestXYRoutingDeterminism(t *testing.T) {
	// Same sends on two meshes produce identical timings.
	m1, m2 := MustNew(cfg4x4()), MustNew(cfg4x4())
	pairs := [][2]int{{0, 15}, {7, 8}, {3, 12}, {15, 0}, {5, 10}}
	for i, p := range pairs {
		now := sim.Time(i * 13)
		if m1.Send(now, p[0], p[1], 144) != m2.Send(now, p[0], p[1], 144) {
			t.Fatal("mesh timing not deterministic")
		}
	}
}

func TestAvgHops(t *testing.T) {
	m := MustNew(cfg4x4())
	// For a 4x4 mesh the mean XY distance over distinct ordered pairs is 2.666…
	got := m.AvgHops()
	if got < 2.5 || got > 2.8 {
		t.Fatalf("AvgHops = %v, want ≈2.67", got)
	}
}

// Property: arrival time is always ≥ send time + hops*RouterDelay + ser, and
// monotonically consistent with queueing (never earlier than uncontended).
func TestArrivalLowerBoundProperty(t *testing.T) {
	f := func(srcRaw, dstRaw uint8, nowRaw uint16, data bool) bool {
		m := MustNew(cfg4x4())
		src := int(srcRaw) % 16
		dst := int(dstRaw) % 16
		now := sim.Time(nowRaw)
		bytes := uint64(16)
		if data {
			bytes = 144
		}
		arrive := m.Send(now, src, dst, bytes)
		ser := sim.Time((bytes + 1) / 2)
		var lower sim.Time
		if src == dst {
			lower = now + ser
		} else {
			lower = now + sim.Time(m.Hops(src, dst))*10 + ser
		}
		return arrive >= lower
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
