package mesh

import "pimdsm/internal/sim"

// MinLinkLatency returns the smallest simulated delay by which a message at
// one router can influence an adjacent router: the per-hop head latency.
// Wormhole routing advances a message's head one router per RouterDelay
// cycles, and link occupancy (serialization, queueing) only ever adds to
// that, so RouterDelay is a hard lower bound on any node-to-node influence.
//
// This is the conservative lookahead of a partitioned simulation whose
// shard boundaries cut mesh links: a shard that has executed up to time t
// cannot receive any effect timestamped before t + MinLinkLatency, so the
// engine may safely run every shard to that horizon in parallel
// (sim.Sharded derives its window width from this — the bound is extracted
// from the link parameters, never hardcoded).
func (c Config) MinLinkLatency() sim.Time { return c.RouterDelay }

// MinLinkLatency returns the mesh's conservative cross-node lookahead; see
// Config.MinLinkLatency.
func (m *Mesh) MinLinkLatency() sim.Time { return m.cfg.MinLinkLatency() }
