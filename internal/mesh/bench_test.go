package mesh

import (
	"testing"

	"pimdsm/internal/sim"
)

func BenchmarkSendControl(b *testing.B) {
	b.ReportAllocs()
	m := MustNew(DefaultConfig(8, 8))
	for i := 0; i < b.N; i++ {
		m.Send(sim.Time(i), i%64, (i*7)%64, 16)
	}
}

func BenchmarkSendData(b *testing.B) {
	b.ReportAllocs()
	m := MustNew(DefaultConfig(8, 8))
	for i := 0; i < b.N; i++ {
		m.Send(sim.Time(i*4), i%64, (i*13)%64, 144)
	}
}
