// Package coma implements the Flat COMA baseline of the paper's evaluation
// (§3): every node's local DRAM is an attraction memory (a tagged
// set-associative cache of memory lines, like AGG's P-node memories), the
// directory home of a line is fixed by first touch, but the data itself
// migrates to wherever it is used. Exactly one copy of each line is the
// master; replacement prefers invalid and non-master lines, and a displaced
// master is *injected* into another node's attraction memory using Joe and
// Hennessy's method (relocate to the provider, cascading onwards if the
// provider's set is full of masters) — the protocol complication and memory
// pollution AGG's home-always-accepts design avoids.
package coma

import (
	"fmt"

	"pimdsm/internal/cache"
	"pimdsm/internal/hashmap"
	"pimdsm/internal/mesh"
	"pimdsm/internal/obs"
	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
	"pimdsm/internal/stats"
)

type dirState uint8

const (
	dirUnfetched dirState = iota // zero-fill on first touch
	dirShared                    // master plus possibly non-master copies
	dirDirty                     // single writable master copy
	dirSwapped                   // overflow: line swapped to disk
)

type dirEntry struct {
	state   dirState
	master  int32
	sharers proto.PtrVec
}

// Config describes a Flat COMA machine.
type Config struct {
	Nodes int

	LineBytes uint64
	PageBytes uint64

	// AMBytes is each node's attraction-memory capacity, organized as an
	// AMAssoc-way cache with OnChipFraction on chip.
	AMBytes        uint64
	AMAssoc        int
	OnChipFraction float64

	// MaxInjectHops bounds an injection cascade before the line is swapped
	// to disk. 0 means scan every node (with pressure < 100% space exists
	// somewhere, so overflow to disk is then a true last resort).
	MaxInjectHops int

	Caches proto.CacheGeom
	Timing proto.Timing
	Costs  proto.HandlerCosts
	Mesh   mesh.Config
}

// DefaultConfig returns the Table 1 COMA configuration (double-width links,
// hardware protocol costs, 4-way attraction memories).
func DefaultConfig(nodes int, amBytes uint64, l1, l2 uint64) Config {
	mc := mesh.DefaultConfig(0, 0)
	mc.BytesPerCycle *= 2
	return Config{
		Nodes:          nodes,
		LineBytes:      128,
		PageBytes:      4096,
		AMBytes:        amBytes,
		AMAssoc:        4,
		OnChipFraction: 0.5,
		MaxInjectHops:  0,
		Caches:         proto.DefaultCacheGeom(l1, l2),
		Timing:         proto.DefaultTiming(128),
		Costs:          proto.AGGCosts().Scale(proto.HardwareScale),
		Mesh:           mc,
	}
}

// Machine is the Flat COMA engine.
type Machine struct {
	cfg Config
	net *mesh.Mesh

	caches []*proto.CacheSet
	am     []*cache.LocalMemory
	hproc  []sim.Resource
	bank   []sim.Resource
	disk   []sim.Resource

	// dir is the open-addressed flat directory (line -> entry); entries come
	// from a slab pool, so directory growth does not churn the allocator.
	dir      hashmap.Map[*dirEntry]
	dirPool  hashmap.Pool[dirEntry]
	homes    hashmap.Map[int] // page -> directory home (first touch)
	provider hashmap.Map[int] // line -> node that last supplied it (injection target)

	allNodes []int
	st       stats.Machine
	trace    *obs.Trace
	spans    *obs.Spans
	prof     *obs.Profile

	audit       bool
	auditViol   uint64
	auditSample []string
}

// New builds a COMA machine.
func New(cfg Config) (*Machine, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("coma: need at least one node")
	}
	mc := cfg.Mesh
	if mc.Width == 0 || mc.Height == 0 {
		mc.Width = 8
		if cfg.Nodes < 8 {
			mc.Width = cfg.Nodes
		}
		mc.Height = (cfg.Nodes + mc.Width - 1) / mc.Width
	}
	net, err := mesh.New(mc)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		net:   net,
		trace: obs.Nop(),
		spans: obs.NopSpans(),
		prof:  obs.NopProfile(),
	}
	m.caches = make([]*proto.CacheSet, cfg.Nodes)
	m.am = make([]*cache.LocalMemory, cfg.Nodes)
	m.hproc = make([]sim.Resource, cfg.Nodes)
	m.bank = make([]sim.Resource, cfg.Nodes)
	m.disk = make([]sim.Resource, cfg.Nodes)
	for i := range m.caches {
		cs, err := proto.NewCacheSet(cfg.Caches, cfg.LineBytes)
		if err != nil {
			return nil, err
		}
		m.caches[i] = cs
		am, err := cache.NewLocal(cfg.AMBytes, cfg.LineBytes, cfg.AMAssoc, cfg.OnChipFraction)
		if err != nil {
			return nil, err
		}
		m.am[i] = am
	}
	m.allNodes = make([]int, cfg.Nodes)
	for i := range m.allNodes {
		m.allNodes[i] = i
	}
	return m, nil
}

// rank implements the paper's COMA replacement policy: invalid (handled by
// the cache) and non-master lines are replaced first.
func rank(s cache.State) int {
	if s == cache.Shared {
		return 0
	}
	return 1
}

// LineBytes returns the coherence unit size.
func (m *Machine) LineBytes() uint64 { return m.cfg.LineBytes }

// Stats returns the machine's counters.
func (m *Machine) Stats() *stats.Machine { return &m.st }

// Mesh returns the interconnect.
func (m *Machine) Mesh() *mesh.Mesh { return m.net }

// SetTrace routes protocol trace events to t; nil disables.
func (m *Machine) SetTrace(t *obs.Trace) {
	if t == nil {
		t = obs.Nop()
	}
	m.trace = t
	m.net.SetTrace(t)
}

// SetSpans routes transaction-span phase marks to s (nil disables), on the
// machine and its mesh.
func (m *Machine) SetSpans(s *obs.Spans) {
	if s == nil {
		s = obs.NopSpans()
	}
	m.spans = s
	m.net.SetSpans(s)
}

// SetProfile routes handler-class cycle attribution to p (nil disables), on
// the machine and its mesh. The home engines and paging devices are covered;
// attraction-memory banks are not (they mostly serve the local CPU).
func (m *Machine) SetProfile(p *obs.Profile) {
	if p == nil {
		p = obs.NopProfile()
	}
	p.EnsureNodes(m.cfg.Nodes)
	m.prof = p
	m.net.SetProfile(p)
}

// FinishProfile folds the home engines' and paging devices' resource
// accounting into the attached profile. Cold path, called once after a run.
func (m *Machine) FinishProfile() {
	if !m.prof.On() {
		return
	}
	for h := range m.hproc {
		b, a, w := m.hproc[h].Utilization()
		m.prof.SetResource(h, obs.ResProc, b, a, w, m.hproc[h].FreeAt())
		b, a, w = m.disk[h].Utilization()
		m.prof.SetResource(h, obs.ResDisk, b, a, w, m.disk[h].FreeAt())
	}
	m.net.FoldProfile(m.prof)
}

// SetAudit enables the per-transaction coherence audit of the accessed
// line's directory entry and master copy. Read-only: results stay
// bit-identical.
func (m *Machine) SetAudit(on bool) { m.audit = on }

// AuditReport returns the violation count and bounded diagnostics.
func (m *Machine) AuditReport() (uint64, []string) { return m.auditViol, m.auditSample }

const maxAuditSamples = 8

func (m *Machine) auditFail(format string, args ...any) {
	m.auditViol++
	if len(m.auditSample) < maxAuditSamples {
		m.auditSample = append(m.auditSample, fmt.Sprintf(format, args...))
	}
}

// auditAccess checks the flat-directory invariants for the accessed line:
// exactly one master whose attraction memory really holds the line in the
// owning state, membership of the master in the sharer vector, and no
// residual master once a line is swapped out.
func (m *Machine) auditAccess(addr uint64) {
	line := m.alignLine(addr)
	e, ok := m.dir.Get(line)
	if !ok {
		m.auditFail("line %#x: no directory entry after access", line)
		return
	}
	switch e.state {
	case dirUnfetched, dirSwapped:
		if e.master != -1 {
			m.auditFail("line %#x in state %d retains master %d", line, e.state, e.master)
		}
	case dirShared, dirDirty:
		if e.master < 0 || int(e.master) >= m.cfg.Nodes {
			m.auditFail("line %#x has invalid master %d", line, e.master)
			return
		}
		want := cache.SharedMaster
		if e.state == dirDirty {
			want = cache.Dirty
		}
		if st, hit, _ := m.am[e.master].Lookup(line); !hit || st != want {
			m.auditFail("line %#x: master %d holds %v (hit=%v), want %v", line, e.master, st, hit, want)
		}
		if !e.sharers.Contains(int(e.master)) {
			m.auditFail("line %#x: master %d missing from sharer vector", line, e.master)
		}
	default:
		m.auditFail("line %#x in unknown directory state %d", line, e.state)
	}
}

// AMOf exposes a node's attraction memory for tests.
func (m *Machine) AMOf(n int) *cache.LocalMemory { return m.am[n] }

func (m *Machine) alignLine(addr uint64) uint64 { return addr &^ (m.cfg.LineBytes - 1) }
func (m *Machine) pageOf(addr uint64) uint64    { return addr &^ (m.cfg.PageBytes - 1) }

func (m *Machine) homeFor(p int, addr uint64) int {
	page := m.pageOf(addr)
	h, ok := m.homes.Get(page)
	if !ok {
		h = p
		m.homes.Put(page, h)
		m.st.FirstTouches++
	}
	return h
}

func (m *Machine) entry(line uint64) *dirEntry {
	e, ok := m.dir.Get(line)
	if !ok {
		e = m.dirPool.Get()
		e.master = -1
		m.dir.Put(line, e)
	}
	return e
}

// hopClass classifies a transaction by distinct node hops: requester->home->
// supplier->requester collapses when roles coincide.
func hopClass(p, home, supplier int) proto.LatClass {
	if home == p && supplier == p {
		return proto.LatMem
	}
	if home == p || supplier == home {
		return proto.Lat2Hop
	}
	return proto.Lat3Hop
}

// Access services a load or store by node p at time now.
func (m *Machine) Access(now sim.Time, p int, addr uint64, write bool) (sim.Time, proto.LatClass) {
	if m.spans.On() {
		m.spans.Begin(now, int32(p), m.alignLine(addr), write)
	}
	done, class := m.access(now, p, addr, write)
	if m.spans.On() {
		m.spans.End(done, class)
	}
	if m.audit {
		m.auditAccess(addr)
	}
	if write {
		m.st.Write(class, done-now)
	} else {
		m.st.Read(class, done-now)
	}
	if m.trace.On() {
		k := obs.EvRead
		if write {
			k = obs.EvWrite
		}
		m.trace.Emit(k, now, done-now, int32(p), m.alignLine(addr), uint64(class))
	}
	return done, class
}

func (m *Machine) access(now sim.Time, p int, addr uint64, write bool) (sim.Time, proto.LatClass) {
	if hit, class, _ := m.caches[p].Lookup(addr, write); hit {
		lat := m.cfg.Timing.L1Lat
		if class == proto.LatL2 {
			lat = m.cfg.Timing.L2Lat
		}
		return now + lat, class
	}

	// Attraction memory.
	line := m.alignLine(addr)
	st, hit, onChip := m.am[p].Access(addr)
	bankStart := m.bank[p].Acquire(now, m.cfg.Timing.MemBankOcc)
	memLat := m.cfg.Timing.MemOffChip
	if onChip || !hit {
		memLat = m.cfg.Timing.MemOnChip
	}
	memDone := bankStart + memLat
	if hit && (!write || st == cache.Dirty) {
		m.caches[p].Fill(addr, st == cache.Dirty)
		return memDone, proto.LatMem
	}

	home := m.homeFor(p, addr)
	e := m.entry(line)
	if write {
		return m.writeMiss(memDone, p, home, addr, line, e, hit)
	}
	return m.readMiss(memDone, p, home, addr, line, e)
}

// dirAt charges the directory handler at the home: a network message when
// the home is remote, just handler occupancy when it is on chip.
func (m *Machine) dirAt(t sim.Time, p, home int, occ sim.Time) sim.Time {
	if home != p {
		t = m.net.Send(t, p, home, m.net.ControlBytes())
		if m.spans.On() {
			m.spans.Mark(obs.PhaseNetRequest, t)
		}
	}
	return m.hproc[home].Acquire(t, occ)
}

func (m *Machine) readMiss(reqT sim.Time, p, home int, addr, line uint64, e *dirEntry) (sim.Time, proto.LatClass) {
	data := m.net.DataBytes(m.cfg.LineBytes)
	ctrl := m.net.ControlBytes()
	if m.spans.On() {
		m.spans.Mark(obs.PhaseIssue, reqT)
	}
	hs := m.dirAt(reqT, p, home, m.cfg.Costs.ReadOcc)
	m.prof.Node(home, obs.ResProc, obs.HCDirLookup, m.cfg.Costs.ReadOcc)

	var done sim.Time
	supplier := home
	fillState := cache.Shared

	switch e.state {
	case dirUnfetched:
		// Zero-fill from the home's memory controller; the first toucher
		// becomes the master.
		m.bank[home].Acquire(hs, m.cfg.Timing.MemBankOcc)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseDirOcc, hs+m.cfg.Costs.ReadLat)
		}
		done = m.net.Send(hs+m.cfg.Costs.ReadLat, home, p, data)
		e.state = dirShared
		e.master = int32(p)
		e.sharers.Add(p)
		fillState = cache.SharedMaster
	case dirSwapped:
		// The line was swapped out after an injection overflow.
		ds := m.disk[home].Acquire(hs, m.cfg.Timing.DiskLat)
		m.prof.Node(home, obs.ResDisk, obs.HCPageout, m.cfg.Timing.DiskLat)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseDirOcc, ds+m.cfg.Timing.DiskLat)
		}
		done = m.net.Send(ds+m.cfg.Timing.DiskLat, home, p, data)
		m.st.DiskFaults++
		if m.trace.On() {
			m.trace.Emit(obs.EvDiskFault, ds, 0, int32(home), line, 0)
		}
		e.state = dirShared
		e.master = int32(p)
		e.sharers.Add(p)
		fillState = cache.SharedMaster
	default:
		q := int(e.master)
		if q == p {
			panic("coma: read miss by the master holder")
		}
		supplier = q
		var at sim.Time
		if q == home {
			at = hs
			if m.spans.On() {
				m.spans.Mark(obs.PhaseDirOcc, hs)
			}
		} else {
			if m.spans.On() {
				m.spans.Mark(obs.PhaseDirOcc, hs+m.cfg.Costs.ReadLat)
			}
			at = m.net.Send(hs+m.cfg.Costs.ReadLat, home, q, ctrl)
		}
		qs := m.bank[q].Acquire(at, m.cfg.Timing.MemBankOcc)
		sendT := qs + m.amLat(q, line)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseOwnerFetch, sendT)
		}
		done = m.net.Send(sendT, q, p, data)
		if e.state == dirDirty {
			// Master downgrades but keeps mastership (flat COMA: no copy
			// goes back to the home).
			m.am[q].SetState(line, cache.SharedMaster)
			m.caches[q].DowngradeMemLine(line)
			e.state = dirShared
		}
		e.sharers.Add(p)
		fillState = cache.Shared
	}
	if m.spans.On() {
		m.spans.Mark(obs.PhaseNetReply, done)
	}
	class := hopClass(p, home, supplier)
	m.fill(done, p, addr, fillState, false, supplier)
	return done, class
}

func (m *Machine) writeMiss(reqT sim.Time, p, home int, addr, line uint64, e *dirEntry, upgrade bool) (sim.Time, proto.LatClass) {
	data := m.net.DataBytes(m.cfg.LineBytes)
	ctrl := m.net.ControlBytes()

	targets := e.sharers.Targets(nil, m.allNodes, p)
	occ := m.cfg.Costs.ReadExOcc + m.cfg.Costs.InvalPerNode*sim.Time(len(targets))
	if m.spans.On() {
		m.spans.Mark(obs.PhaseIssue, reqT)
	}
	hs := m.dirAt(reqT, p, home, occ)
	m.prof.Node(home, obs.ResProc, obs.HCDirLookup, m.cfg.Costs.ReadExOcc)
	m.prof.Node(home, obs.ResProc, obs.HCInval, occ-m.cfg.Costs.ReadExOcc)
	replyT := hs + m.cfg.Costs.ReadExLat

	var done sim.Time
	supplier := home

	switch {
	case e.state == dirUnfetched:
		m.bank[home].Acquire(hs, m.cfg.Timing.MemBankOcc)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseDirOcc, replyT)
		}
		done = m.net.Send(replyT, home, p, data)
	case e.state == dirSwapped:
		ds := m.disk[home].Acquire(hs, m.cfg.Timing.DiskLat)
		m.prof.Node(home, obs.ResDisk, obs.HCPageout, m.cfg.Timing.DiskLat)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseDirOcc, ds+m.cfg.Timing.DiskLat)
		}
		done = m.net.Send(ds+m.cfg.Timing.DiskLat, home, p, data)
		m.st.DiskFaults++
		if m.trace.On() {
			m.trace.Emit(obs.EvDiskFault, ds, 0, int32(home), line, 0)
		}
	case upgrade:
		// p holds a readable (non-master) copy; ownership grant only.
		if m.spans.On() {
			m.spans.Mark(obs.PhaseDirOcc, replyT)
		}
		done = m.net.Send(replyT, home, p, ctrl)
		m.st.Upgrades++
		if m.trace.On() {
			m.trace.Emit(obs.EvUpgrade, replyT, 0, int32(p), line, 0)
		}
	default:
		q := int(e.master)
		if q == p {
			panic("coma: write miss by the master holder")
		}
		supplier = q
		var at sim.Time
		if q == home {
			at = hs
			if m.spans.On() {
				m.spans.Mark(obs.PhaseDirOcc, hs)
			}
		} else {
			if m.spans.On() {
				m.spans.Mark(obs.PhaseDirOcc, replyT)
			}
			at = m.net.Send(replyT, home, q, ctrl)
		}
		qs := m.bank[q].Acquire(at, m.cfg.Timing.MemBankOcc)
		sendT := qs + m.amLat(q, line)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseOwnerFetch, sendT)
		}
		done = m.net.Send(sendT, q, p, data)
	}
	// The data/grant reply ends here; the invalidation-ack collection below
	// only extends done, and that tail retires the span.
	if m.spans.On() {
		m.spans.Mark(obs.PhaseNetReply, done)
	}

	// Invalidate every other copy; acks race the data to the requester.
	for _, q := range targets {
		iv := m.net.Send(replyT, home, q, ctrl)
		m.am[q].Invalidate(line)
		m.caches[q].InvalidateMemLine(line)
		m.st.Invalidations++
		if m.trace.On() {
			m.trace.Emit(obs.EvInval, iv, 0, int32(q), line, 0)
		}
		if ack := m.net.Send(iv, q, p, ctrl); ack > done {
			done = ack
		}
	}

	class := hopClass(p, home, supplier)
	e.state = dirDirty
	e.master = int32(p)
	e.sharers.Clear()
	e.sharers.Add(p)
	if upgrade {
		if !m.am[p].SetState(line, cache.Dirty) {
			panic("coma: upgrade of a line absent from the attraction memory")
		}
		m.caches[p].Fill(addr, true)
	} else {
		m.fill(done, p, addr, cache.Dirty, true, supplier)
	}
	return done, class
}

// amLat is node q's attraction-memory latency for a line it holds.
func (m *Machine) amLat(q int, line uint64) sim.Time {
	_, hit, onChip := m.am[q].Lookup(line)
	if hit && onChip {
		return m.cfg.Timing.MemOnChip
	}
	return m.cfg.Timing.MemOffChip
}

// fill inserts a fetched line into p's attraction memory and caches.
// Displaced non-master shared lines are dropped silently; a displaced master
// must be injected into another attraction memory.
func (m *Machine) fill(when sim.Time, p int, addr uint64, st cache.State, writable bool, supplier int) {
	line := m.alignLine(addr)
	m.provider.Put(line, supplier)
	v := m.am[p].Insert(line, st, rank)
	m.caches[p].Fill(addr, writable)
	if !v.Valid() {
		return
	}
	m.caches[p].InvalidateMemLine(v.Addr)
	if v.State.Owned() {
		m.inject(when, p, v.Addr, v.State)
	}
	// Non-master shared victims vanish silently (stale sharer pointers are
	// harmless: later invalidations to them are no-ops).
}

// inject relocates a displaced master line (Joe & Hennessy): first to the
// node that provided the line whose arrival caused the displacement, then
// cascading node to node while the candidate sets are full of other masters.
// If the cascade exceeds MaxInjectHops the line is swapped out to disk at
// its home — COMA's overflow safety valve.
func (m *Machine) inject(t sim.Time, from int, line uint64, st cache.State) {
	e := m.entry(line)
	if int(e.master) != from {
		panic(fmt.Sprintf("coma: injecting %#x from %d but master is %d", line, from, e.master))
	}
	data := m.net.DataBytes(m.cfg.LineBytes)
	target, _ := m.provider.Get(line)
	if target == from || target < 0 || target >= m.cfg.Nodes {
		target = (from + 1) % m.cfg.Nodes
	}
	cur := from
	maxHops := m.cfg.MaxInjectHops
	if maxHops <= 0 {
		maxHops = m.cfg.Nodes
	}
	for hop := 0; hop < maxHops; hop++ {
		arrive := m.net.Send(t, cur, target, data)
		hs := m.hproc[target].Acquire(arrive, m.cfg.Costs.WBOcc)
		m.prof.Node(target, obs.ResProc, obs.HCWriteBack, m.cfg.Costs.WBOcc)
		m.bank[target].Acquire(hs, m.cfg.Timing.MemBankOcc)
		v := m.am[target].ProbeVictim(line, rank)
		if !v.State.Owned() {
			m.am[target].Insert(line, st, rank)
			if v.Valid() {
				m.caches[target].InvalidateMemLine(v.Addr)
			}
			e.master = int32(target)
			e.sharers.Remove(from)
			e.sharers.Add(target)
			m.st.Injections++
			m.st.InjectionHops += uint64(hop + 1)
			if m.trace.On() {
				m.trace.Emit(obs.EvInject, hs, 0, int32(target), line, uint64(hop+1))
			}
			return
		}
		// This set is all masters: pass the line on.
		t = hs
		cur = target
		target = (target + 1) % m.cfg.Nodes
		if target == from {
			target = (target + 1) % m.cfg.Nodes
		}
	}
	// Overflow: swap to disk at the home, invalidating the straggler
	// non-master copies so no stale data survives.
	home := m.homeFor(from, line)
	arrive := m.net.Send(t, cur, home, data)
	hs := m.hproc[home].Acquire(arrive, m.cfg.Costs.WBOcc)
	m.prof.Node(home, obs.ResProc, obs.HCPageout, m.cfg.Costs.WBOcc)
	m.disk[home].Acquire(hs, m.cfg.Timing.DiskLat)
	m.prof.Node(home, obs.ResDisk, obs.HCPageout, m.cfg.Timing.DiskLat)
	for _, q := range e.sharers.Targets(nil, m.allNodes, from) {
		iv := m.net.Send(hs, home, q, m.net.ControlBytes())
		m.am[q].Invalidate(line)
		m.caches[q].InvalidateMemLine(line)
		m.st.Invalidations++
		if m.trace.On() {
			m.trace.Emit(obs.EvInval, iv, 0, int32(q), line, 0)
		}
	}
	e.state = dirSwapped
	e.master = -1
	e.sharers.Clear()
	m.st.Overflows++
	if m.trace.On() {
		m.trace.Emit(obs.EvOverflow, hs, 0, int32(home), line, 0)
	}
}
