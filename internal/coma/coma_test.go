package coma

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pimdsm/internal/cache"
	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
)

func testMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(DefaultConfig(4, 8192, 1024, 4096)) // 64-line AMs
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFirstTouchBecomesMaster(t *testing.T) {
	m := testMachine(t)
	_, class := m.Access(0, 1, 0x1000, false)
	if class != proto.LatMem {
		t.Fatalf("first-touch read class = %v, want Memory (home==supplier==self)", class)
	}
	st, hit, _ := m.AMOf(1).Lookup(0x1000)
	if !hit || st != cache.SharedMaster {
		t.Fatalf("AM state = %v/%v, want SharedMaster", st, hit)
	}
}

func TestDataMigratesToReader(t *testing.T) {
	m := testMachine(t)
	t1, _ := m.Access(0, 0, 0x2000, true)       // P0 dirties (home 0, master 0)
	t2, class := m.Access(t1, 1, 0x2000, false) // P1 reads: 2 hops (home==master==0)
	if class != proto.Lat2Hop {
		t.Fatalf("read of remote dirty = %v, want 2Hop", class)
	}
	// The line is now in P1's attraction memory: subsequent accesses after
	// SRAM flush are local — COMA's key property.
	m.caches[1].Flush(nil)
	_, class = m.Access(t2, 1, 0x2000, false)
	if class != proto.LatMem {
		t.Fatalf("post-migration read class = %v, want Memory", class)
	}
	// Previous owner was downgraded but kept mastership.
	st, _, _ := m.AMOf(0).Lookup(0x2000)
	if st != cache.SharedMaster {
		t.Fatalf("old owner AM state = %v, want SharedMaster", st)
	}
}

func TestThirdNodeReadIsThreeHop(t *testing.T) {
	m := testMachine(t)
	t1, _ := m.Access(0, 0, 0x3000, true)  // home 0, master 0
	t2, _ := m.Access(t1, 1, 0x3000, true) // master moves to 1 (dirty)
	_, class := m.Access(t2, 2, 0x3000, false)
	if class != proto.Lat3Hop {
		t.Fatalf("read via home to third-node master = %v, want 3Hop", class)
	}
}

func TestWriteInvalidatesAllCopies(t *testing.T) {
	m := testMachine(t)
	t1, _ := m.Access(0, 0, 0x4000, false)
	t2, _ := m.Access(t1, 1, 0x4000, false)
	t3, _ := m.Access(t2, 2, 0x4000, false)
	before := m.Stats().Invalidations
	_, _ = m.Access(t3, 3, 0x4000, true)
	if got := m.Stats().Invalidations - before; got != 3 {
		t.Fatalf("invalidations = %d, want 3", got)
	}
	for q := 0; q < 3; q++ {
		if _, hit, _ := m.AMOf(q).Lookup(0x4000); hit {
			t.Fatalf("node %d still holds an invalidated line", q)
		}
	}
	st, _, _ := m.AMOf(3).Lookup(0x4000)
	if st != cache.Dirty {
		t.Fatalf("writer AM state = %v, want Dirty", st)
	}
}

func TestUpgradeFromSharedCopy(t *testing.T) {
	m := testMachine(t)
	t1, _ := m.Access(0, 0, 0x5000, false)  // master at 0
	t2, _ := m.Access(t1, 1, 0x5000, false) // shared copy at 1
	_, _ = m.Access(t2, 1, 0x5000, true)    // upgrade in place
	if m.Stats().Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", m.Stats().Upgrades)
	}
	st, _, _ := m.AMOf(1).Lookup(0x5000)
	if st != cache.Dirty {
		t.Fatalf("upgrader AM state = %v, want Dirty", st)
	}
	if _, hit, _ := m.AMOf(0).Lookup(0x5000); hit {
		t.Fatal("old master survived the upgrade")
	}
}

func TestMasterDisplacementInjects(t *testing.T) {
	// 2 nodes with tiny AMs: 4 lines, 4-way => a single set.
	cfg := DefaultConfig(2, 512, 256, 512)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 writes 5 distinct lines: the 5th insert displaces a dirty
	// master, which must be injected into node 1's attraction memory.
	now := sim.Time(0)
	for i := uint64(0); i < 5; i++ {
		now, _ = m.Access(now, 0, i*128, true)
	}
	if m.Stats().Injections == 0 {
		t.Fatal("no injection after displacing a dirty master")
	}
	// The injected line (LRU victim: line 0) now lives at node 1.
	st, hit, _ := m.AMOf(1).Lookup(0)
	if !hit || st != cache.Dirty {
		t.Fatalf("injected line at node 1: %v/%v, want Dirty", st, hit)
	}
	// And node 1 is its master: node 0 re-reading it goes remote.
	_, class := m.Access(now, 0, 0, false)
	if class == proto.LatMem {
		t.Fatal("re-read of injected line was local")
	}
}

func TestInjectionOverflowSwapsToDisk(t *testing.T) {
	// Both nodes' AMs are a single 4-line set; fill the machine with dirty
	// masters so injection cascades fail and lines swap to disk.
	cfg := DefaultConfig(2, 512, 256, 512)
	cfg.MaxInjectHops = 3
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	for i := uint64(0); i < 16; i++ {
		now, _ = m.Access(now, int(i%2), i*128, true)
	}
	if m.Stats().Overflows == 0 {
		t.Fatal("no overflow despite every frame holding a master")
	}
	// A swapped line can be faulted back in.
	var swapped uint64
	found := false
	m.dir.Range(func(l uint64, e *dirEntry) bool {
		if e.state == dirSwapped {
			swapped, found = l, true
			return false
		}
		return true
	})
	if !found {
		t.Fatal("no swapped line recorded")
	}
	before := m.Stats().DiskFaults
	now, _ = m.Access(now, 0, swapped, false)
	if m.Stats().DiskFaults != before+1 {
		t.Fatalf("disk faults = %d, want %d", m.Stats().DiskFaults, before+1)
	}
	_ = now
}

// Property: exactly one master exists for every non-swapped fetched line
// (ground truth across attraction memories), under random traffic.
func TestCOMASingleMasterProperty(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		m, err := New(DefaultConfig(3, 2048, 512, 1024))
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, 7))
		clocks := make([]sim.Time, 3)
		for i := 0; i < 50+int(steps); i++ {
			p := rng.IntN(3)
			addr := uint64(rng.IntN(40)) * 128
			write := rng.IntN(3) == 0
			done, _ := m.Access(clocks[p], p, addr, write)
			if done < clocks[p] {
				return false
			}
			for q := range clocks {
				if clocks[q] < done {
					clocks[q] = done
				}
			}
		}
		masters := map[uint64]int{}
		for n := 0; n < 3; n++ {
			m.AMOf(n).ForEach(func(a uint64, s cache.State, _ bool) {
				if s.Owned() {
					masters[a]++
				}
			})
		}
		ok := true
		m.dir.Range(func(line uint64, e *dirEntry) bool {
			switch e.state {
			case dirShared, dirDirty:
				if masters[line] != 1 {
					t.Logf("line %#x in %v has %d masters", line, e.state, masters[line])
					ok = false
					return false
				}
			case dirSwapped, dirUnfetched:
				if masters[line] != 0 {
					t.Logf("line %#x in %v has %d masters", line, e.state, masters[line])
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
