package stats

import (
	"testing"
	"testing/quick"

	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
)

func TestReadWriteAccumulation(t *testing.T) {
	var m Machine
	m.Read(proto.LatL1, 3)
	m.Read(proto.LatL1, 3)
	m.Read(proto.Lat2Hop, 300)
	m.Write(proto.Lat3Hop, 400)
	if m.Reads() != 3 {
		t.Fatalf("Reads = %d, want 3", m.Reads())
	}
	if m.TotalReadLat() != 306 {
		t.Fatalf("TotalReadLat = %d, want 306", m.TotalReadLat())
	}
	if m.WriteCount[proto.Lat3Hop] != 1 || m.WriteLatSum[proto.Lat3Hop] != 400 {
		t.Fatal("write accounting wrong")
	}
}

func TestDiffSubtractsEverything(t *testing.T) {
	var a Machine
	a.Read(proto.LatMem, 50)
	a.Invalidations = 5
	a.WriteBacks = 7
	a.Pageouts = 2
	a.Scans = 3
	a.CrisisPauses = 1
	snap := a
	a.Read(proto.LatMem, 50)
	a.Read(proto.Lat2Hop, 300)
	a.Invalidations = 9
	a.WriteBacks = 10
	a.Pageouts = 2
	a.Scans = 4
	a.CrisisPauses = 2
	d := a.Diff(&snap)
	if d.Reads() != 2 || d.ReadLatSum[proto.LatMem] != 50 || d.ReadLatSum[proto.Lat2Hop] != 300 {
		t.Fatalf("diff reads: %+v", d)
	}
	if d.Invalidations != 4 || d.WriteBacks != 3 || d.Pageouts != 0 || d.Scans != 1 || d.CrisisPauses != 1 {
		t.Fatalf("diff counters: %+v", d)
	}
}

func TestBreakdown(t *testing.T) {
	threads := []Thread{
		{MemStall: 100, Finish: 1000},
		{MemStall: 300, Finish: 900},
	}
	bd := NewBreakdown(threads)
	if bd.Exec != 1000 {
		t.Fatalf("Exec = %d, want max finish 1000", bd.Exec)
	}
	if bd.Memory != 200 {
		t.Fatalf("Memory = %d, want mean stall 200", bd.Memory)
	}
	if bd.Memory+bd.Processor != bd.Exec {
		t.Fatal("breakdown does not add up")
	}
	if got := NewBreakdown(nil); got != (Breakdown{}) {
		t.Fatalf("empty breakdown = %+v", got)
	}
}

// Property: for any pair of snapshots where the later is the earlier plus
// some deltas, Diff recovers exactly the deltas.
func TestDiffProperty(t *testing.T) {
	f := func(base, delta uint32, lat uint16) bool {
		var before Machine
		before.Invalidations = uint64(base)
		before.Read(proto.Lat2Hop, sim.Time(lat))
		after := before
		after.Invalidations += uint64(delta)
		after.Read(proto.Lat3Hop, sim.Time(lat)*2)
		d := after.Diff(&before)
		return d.Invalidations == uint64(delta) &&
			d.ReadCount[proto.Lat3Hop] == 1 &&
			d.ReadCount[proto.Lat2Hop] == 0 &&
			d.ReadLatSum[proto.Lat3Hop] == sim.Time(lat)*2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
