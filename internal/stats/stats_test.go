package stats

import (
	"testing"
	"testing/quick"

	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
)

func TestReadWriteAccumulation(t *testing.T) {
	var m Machine
	m.Read(proto.LatL1, 3)
	m.Read(proto.LatL1, 3)
	m.Read(proto.Lat2Hop, 300)
	m.Write(proto.Lat3Hop, 400)
	if m.Reads() != 3 {
		t.Fatalf("Reads = %d, want 3", m.Reads())
	}
	if m.TotalReadLat() != 306 {
		t.Fatalf("TotalReadLat = %d, want 306", m.TotalReadLat())
	}
	if m.WriteCount[proto.Lat3Hop] != 1 || m.WriteLatSum[proto.Lat3Hop] != 400 {
		t.Fatal("write accounting wrong")
	}
}

func TestDiffSubtractsEverything(t *testing.T) {
	var a Machine
	a.Read(proto.LatMem, 50)
	a.Invalidations = 5
	a.WriteBacks = 7
	a.Pageouts = 2
	a.Scans = 3
	a.CrisisPauses = 1
	snap := a
	a.Read(proto.LatMem, 50)
	a.Read(proto.Lat2Hop, 300)
	a.Invalidations = 9
	a.WriteBacks = 10
	a.Pageouts = 2
	a.Scans = 4
	a.CrisisPauses = 2
	d := a.Diff(&snap)
	if d.Reads() != 2 || d.ReadLatSum[proto.LatMem] != 50 || d.ReadLatSum[proto.Lat2Hop] != 300 {
		t.Fatalf("diff reads: %+v", d)
	}
	if d.Invalidations != 4 || d.WriteBacks != 3 || d.Pageouts != 0 || d.Scans != 1 || d.CrisisPauses != 1 {
		t.Fatalf("diff counters: %+v", d)
	}
}

func TestLatHistBuckets(t *testing.T) {
	// Bucket b of the power-of-two histogram holds bits.Len64(lat): the L1
	// hit (1 cycle) lands in bucket 1, the 37-cycle local memory hit in
	// bucket 6, the 298-cycle 2-hop round trip in bucket 9, the 20k-cycle
	// disk fault in bucket 15; anything at or above 2^19 saturates the top.
	cases := []struct {
		lat    sim.Time
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{37, 6},
		{298, 9},
		{20000, 15},
		{1 << 18, 19},
		{1 << 30, NumLatBuckets - 1},
		{sim.Never, NumLatBuckets - 1},
	}
	for _, tc := range cases {
		var h LatHist
		h.Observe(tc.lat)
		if h[tc.bucket] != 1 {
			t.Errorf("Observe(%d): want bucket %d, got %v", tc.lat, tc.bucket, h)
		}
		if h.Total() != 1 {
			t.Errorf("Observe(%d): Total = %d", tc.lat, h.Total())
		}
	}
}

func TestLatHistBucketBound(t *testing.T) {
	if BucketBound(0) != 0 {
		t.Fatalf("BucketBound(0) = %d", BucketBound(0))
	}
	if BucketBound(3) != 7 {
		t.Fatalf("BucketBound(3) = %d, want 7", BucketBound(3))
	}
	if BucketBound(NumLatBuckets-1) != sim.Never {
		t.Fatal("top bucket should be unbounded")
	}
	// Every bucket's bound must actually bucket there (except the last).
	for i := 1; i < NumLatBuckets-1; i++ {
		var h LatHist
		h.Observe(BucketBound(i))
		if h[i] != 1 {
			t.Errorf("BucketBound(%d) = %d does not land in bucket %d: %v", i, BucketBound(i), i, h)
		}
	}
}

func TestLatHistDiff(t *testing.T) {
	var a LatHist
	a.Observe(10)
	a.Observe(300)
	snap := a
	a.Observe(300)
	a.Observe(5000)
	d := a.Diff(&snap)
	if d.Total() != 2 {
		t.Fatalf("diff total = %d, want 2", d.Total())
	}
	var want LatHist
	want.Observe(300)
	want.Observe(5000)
	if d != want {
		t.Fatalf("diff = %v, want %v", d, want)
	}
}

func TestMachineHistsTrackReadsWrites(t *testing.T) {
	var m Machine
	m.Read(proto.LatL1, 1)
	m.Read(proto.LatMem, 37)
	m.Write(proto.Lat2Hop, 298)
	if m.ReadHist.Total() != m.Reads() {
		t.Fatalf("read hist total %d != reads %d", m.ReadHist.Total(), m.Reads())
	}
	if m.WriteHist.Total() != 1 || m.WriteHist[9] != 1 {
		t.Fatalf("write hist wrong: %v", m.WriteHist)
	}
	snap := m
	m.Read(proto.Lat3Hop, 450)
	d := m.Diff(&snap)
	if d.ReadHist.Total() != 1 || d.WriteHist.Total() != 0 {
		t.Fatalf("hist diff wrong: reads %v writes %v", d.ReadHist, d.WriteHist)
	}
}

func TestBreakdown(t *testing.T) {
	threads := []Thread{
		{MemStall: 100, Finish: 1000},
		{MemStall: 300, Finish: 900},
	}
	bd := NewBreakdown(threads)
	if bd.Exec != 1000 {
		t.Fatalf("Exec = %d, want max finish 1000", bd.Exec)
	}
	if bd.Memory != 200 {
		t.Fatalf("Memory = %d, want mean stall 200", bd.Memory)
	}
	if bd.Memory+bd.Processor != bd.Exec {
		t.Fatal("breakdown does not add up")
	}
	if got := NewBreakdown(nil); got != (Breakdown{}) {
		t.Fatalf("empty breakdown = %+v", got)
	}
}

// Property: for any pair of snapshots where the later is the earlier plus
// some deltas, Diff recovers exactly the deltas.
func TestDiffProperty(t *testing.T) {
	f := func(base, delta uint32, lat uint16) bool {
		var before Machine
		before.Invalidations = uint64(base)
		before.Read(proto.Lat2Hop, sim.Time(lat))
		after := before
		after.Invalidations += uint64(delta)
		after.Read(proto.Lat3Hop, sim.Time(lat)*2)
		d := after.Diff(&before)
		return d.Invalidations == uint64(delta) &&
			d.ReadCount[proto.Lat3Hop] == 1 &&
			d.ReadCount[proto.Lat2Hop] == 0 &&
			d.ReadLatSum[proto.Lat3Hop] == sim.Time(lat)*2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMerge: element-wise addition, including the overflow bucket.
func TestMerge(t *testing.T) {
	var a, b LatHist
	a.Observe(5)
	a.Observe(sim.Never) // overflow bucket
	b.Observe(5)
	b.Observe(100)
	a.Merge(&b)
	if got := a.Total(); got != 4 {
		t.Fatalf("merged total = %d, want 4", got)
	}
	if a[NumLatBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", a[NumLatBuckets-1])
	}
	var empty LatHist
	a.Merge(&empty)
	if got := a.Total(); got != 4 {
		t.Fatalf("merging an empty histogram changed total to %d", got)
	}
}

// TestPercentileEdges pins the documented corner cases: an empty histogram
// returns 0 for every quantile, a single-bucket histogram returns that
// bucket's bound for every quantile, and mass in the overflow bucket
// returns sim.Never (the bound is unknown).
func TestPercentileEdges(t *testing.T) {
	var empty LatHist
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.Percentile(q); got != 0 {
			t.Fatalf("empty.Percentile(%g) = %d, want 0", q, got)
		}
	}

	var single LatHist
	for i := 0; i < 10; i++ {
		single.Observe(100) // bits.Len64(100) = 7 -> bound 127
	}
	for _, q := range []float64{0.001, 0.5, 1} {
		if got := single.Percentile(q); got != 127 {
			t.Fatalf("single.Percentile(%g) = %d, want 127", q, got)
		}
	}
	// Out-of-range quantiles clamp rather than panic.
	if got := single.Percentile(-1); got != 127 {
		t.Fatalf("Percentile(-1) = %d, want 127", got)
	}
	if got := single.Percentile(2); got != 127 {
		t.Fatalf("Percentile(2) = %d, want 127", got)
	}

	var over LatHist
	over.Observe(1)
	over.Observe(sim.Never)
	if got := over.Percentile(0.5); got != 1 {
		t.Fatalf("over.Percentile(0.5) = %d, want 1", got)
	}
	if got := over.Percentile(1); got != sim.Never {
		t.Fatalf("over.Percentile(1) = %d, want sim.Never", got)
	}
}

// TestPercentileMonotone: percentiles never decrease as q grows.
func TestPercentileMonotone(t *testing.T) {
	var h LatHist
	for i := 1; i <= 1000; i++ {
		h.Observe(sim.Time(i))
	}
	prev := sim.Time(0)
	for q := 0.05; q <= 1.0; q += 0.05 {
		p := h.Percentile(q)
		if p < prev {
			t.Fatalf("Percentile(%g) = %d < previous %d", q, p, prev)
		}
		prev = p
	}
}
