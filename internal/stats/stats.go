// Package stats collects the measurements the paper reports: read latency
// sums by satisfaction level (Figure 7), protocol event counts, and per-run
// execution-time breakdowns (Figure 6).
package stats

import (
	"math/bits"

	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
)

// NumLatBuckets is the number of power-of-two latency buckets in a LatHist.
// Bucket 19 starts at 2^18 = 262144 cycles, far above any single
// transaction (disk faults are 20k cycles), so the top bucket effectively
// never saturates.
const NumLatBuckets = 20

// LatHist is a fixed-bucket latency histogram: bucket b counts latencies in
// [2^(b-1), 2^b - 1] cycles (bucket 0 counts zero-latency events, which do
// not occur in practice; bucket NumLatBuckets-1 absorbs everything above
// its lower bound). Accumulation is branch-light and allocation-free, so it
// stays on even when tracing is off.
type LatHist [NumLatBuckets]uint64

// Observe records one latency.
func (h *LatHist) Observe(lat sim.Time) {
	b := bits.Len64(uint64(lat))
	if b >= NumLatBuckets {
		b = NumLatBuckets - 1
	}
	h[b]++
}

// Total returns the number of recorded latencies.
func (h *LatHist) Total() uint64 {
	var t uint64
	for _, v := range h {
		t += v
	}
	return t
}

// Diff returns the bucket counts accumulated since prev.
func (h *LatHist) Diff(prev *LatHist) LatHist {
	d := *h
	for i := range d {
		d[i] -= prev[i]
	}
	return d
}

// Merge adds other's bucket counts into h.
func (h *LatHist) Merge(other *LatHist) {
	for i := range h {
		h[i] += other[i]
	}
}

// Percentile returns an upper bound on the q-quantile (0 < q ≤ 1) of the
// recorded latencies: the upper bound of the first bucket whose cumulative
// count reaches ⌈q·total⌉. An empty histogram returns 0; quantiles that land
// in the overflow bucket return sim.Never.
func (h *LatHist) Percentile(q float64) sim.Time {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h {
		cum += h[i]
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return sim.Never
}

// BucketBound returns the inclusive upper latency bound of bucket i; the
// last bucket is unbounded and returns sim.Never.
func BucketBound(i int) sim.Time {
	if i >= NumLatBuckets-1 {
		return sim.Never
	}
	return sim.Time(1)<<uint(i) - 1
}

// Machine aggregates coherence-engine counters for one simulated machine.
type Machine struct {
	// ReadLatSum/ReadCount accumulate the latency of every read in the
	// program, whether or not the processor stalled for it (the paper's
	// Figure 7 "adds up the latency of all the reads ... irrespective of
	// whether or not the processor was stalled").
	ReadLatSum [proto.NumLatClasses]sim.Time
	ReadCount  [proto.NumLatClasses]uint64
	// Write transactions, by the same classes.
	WriteLatSum [proto.NumLatClasses]sim.Time
	WriteCount  [proto.NumLatClasses]uint64
	// ReadHist/WriteHist bucket the same latencies into power-of-two bins,
	// so the *distribution* (not just the sum) of transaction latencies is
	// visible — the observability the end-of-run averages hide.
	ReadHist  LatHist
	WriteHist LatHist

	Invalidations uint64 // invalidation messages sent
	WriteBacks    uint64 // dirty/master displacements written back to a home
	Recalls       uint64 // lines recalled from P-nodes during pageout
	Pageouts      uint64 // pages written out by D-nodes (AGG)
	DiskFaults    uint64 // accesses that had to touch disk-resident data
	Injections    uint64 // COMA master-line injections
	InjectionHops uint64 // cumulative injection cascade length
	Overflows     uint64 // COMA injections that fell back to the disk path
	Upgrades      uint64 // ownership transactions without data transfer
	FirstTouches  uint64 // pages mapped on first touch
	Scans         uint64 // computation-in-memory scan operations
	ScanLines     uint64 // lines traversed by D-node scans
	CrisisPauses  uint64 // transactions stalled on a synchronous pageout
}

// Read records a completed read.
func (m *Machine) Read(class proto.LatClass, lat sim.Time) {
	m.ReadLatSum[class] += lat
	m.ReadCount[class]++
	m.ReadHist.Observe(lat)
}

// Write records a completed write transaction.
func (m *Machine) Write(class proto.LatClass, lat sim.Time) {
	m.WriteLatSum[class] += lat
	m.WriteCount[class]++
	m.WriteHist.Observe(lat)
}

// TotalReadLat returns the sum of all read latencies (the Figure 7 bar height).
func (m *Machine) TotalReadLat() sim.Time {
	var t sim.Time
	for _, v := range m.ReadLatSum {
		t += v
	}
	return t
}

// Reads returns the total number of reads.
func (m *Machine) Reads() uint64 {
	var t uint64
	for _, v := range m.ReadCount {
		t += v
	}
	return t
}

// Diff returns the counters accumulated since the snapshot prev was taken.
func (m *Machine) Diff(prev *Machine) Machine {
	d := *m
	for i := range d.ReadLatSum {
		d.ReadLatSum[i] -= prev.ReadLatSum[i]
		d.ReadCount[i] -= prev.ReadCount[i]
		d.WriteLatSum[i] -= prev.WriteLatSum[i]
		d.WriteCount[i] -= prev.WriteCount[i]
	}
	d.ReadHist = d.ReadHist.Diff(&prev.ReadHist)
	d.WriteHist = d.WriteHist.Diff(&prev.WriteHist)
	d.Invalidations -= prev.Invalidations
	d.WriteBacks -= prev.WriteBacks
	d.Recalls -= prev.Recalls
	d.Pageouts -= prev.Pageouts
	d.DiskFaults -= prev.DiskFaults
	d.Injections -= prev.Injections
	d.InjectionHops -= prev.InjectionHops
	d.Overflows -= prev.Overflows
	d.Upgrades -= prev.Upgrades
	d.FirstTouches -= prev.FirstTouches
	d.Scans -= prev.Scans
	d.ScanLines -= prev.ScanLines
	d.CrisisPauses -= prev.CrisisPauses
	return d
}

// Thread carries per-thread time accounting for the Figure 6 breakdown.
type Thread struct {
	Busy     sim.Time // instruction execution (Processor)
	MemStall sim.Time // stalled waiting for loads/stores (Memory)
	SyncSpin sim.Time // spinning at barriers/locks (counted as Processor)
	Finish   sim.Time // local clock at completion
	Ops      uint64
	Loads    uint64
	Stores   uint64
}

// Breakdown is a run's execution-time split normalized the way Figure 6
// reports it: total wall time, with the Memory component being the average
// per-thread memory stall and Processor the remainder (busy + sync spin +
// load imbalance).
type Breakdown struct {
	Exec      sim.Time
	Memory    sim.Time
	Processor sim.Time
}

// NewBreakdown derives a Breakdown from per-thread accounting.
func NewBreakdown(threads []Thread) Breakdown {
	if len(threads) == 0 {
		return Breakdown{}
	}
	var exec sim.Time
	var memSum sim.Time
	for i := range threads {
		if threads[i].Finish > exec {
			exec = threads[i].Finish
		}
		memSum += threads[i].MemStall
	}
	mem := memSum / sim.Time(len(threads))
	proc := exec - mem
	return Breakdown{Exec: exec, Memory: mem, Processor: proc}
}
