// Package stats collects the measurements the paper reports: read latency
// sums by satisfaction level (Figure 7), protocol event counts, and per-run
// execution-time breakdowns (Figure 6).
package stats

import (
	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
)

// Machine aggregates coherence-engine counters for one simulated machine.
type Machine struct {
	// ReadLatSum/ReadCount accumulate the latency of every read in the
	// program, whether or not the processor stalled for it (the paper's
	// Figure 7 "adds up the latency of all the reads ... irrespective of
	// whether or not the processor was stalled").
	ReadLatSum [proto.NumLatClasses]sim.Time
	ReadCount  [proto.NumLatClasses]uint64
	// Write transactions, by the same classes.
	WriteLatSum [proto.NumLatClasses]sim.Time
	WriteCount  [proto.NumLatClasses]uint64

	Invalidations uint64 // invalidation messages sent
	WriteBacks    uint64 // dirty/master displacements written back to a home
	Recalls       uint64 // lines recalled from P-nodes during pageout
	Pageouts      uint64 // pages written out by D-nodes (AGG)
	DiskFaults    uint64 // accesses that had to touch disk-resident data
	Injections    uint64 // COMA master-line injections
	InjectionHops uint64 // cumulative injection cascade length
	Overflows     uint64 // COMA injections that fell back to the disk path
	Upgrades      uint64 // ownership transactions without data transfer
	FirstTouches  uint64 // pages mapped on first touch
	Scans         uint64 // computation-in-memory scan operations
	ScanLines     uint64 // lines traversed by D-node scans
	CrisisPauses  uint64 // transactions stalled on a synchronous pageout
}

// Read records a completed read.
func (m *Machine) Read(class proto.LatClass, lat sim.Time) {
	m.ReadLatSum[class] += lat
	m.ReadCount[class]++
}

// Write records a completed write transaction.
func (m *Machine) Write(class proto.LatClass, lat sim.Time) {
	m.WriteLatSum[class] += lat
	m.WriteCount[class]++
}

// TotalReadLat returns the sum of all read latencies (the Figure 7 bar height).
func (m *Machine) TotalReadLat() sim.Time {
	var t sim.Time
	for _, v := range m.ReadLatSum {
		t += v
	}
	return t
}

// Reads returns the total number of reads.
func (m *Machine) Reads() uint64 {
	var t uint64
	for _, v := range m.ReadCount {
		t += v
	}
	return t
}

// Diff returns the counters accumulated since the snapshot prev was taken.
func (m *Machine) Diff(prev *Machine) Machine {
	d := *m
	for i := range d.ReadLatSum {
		d.ReadLatSum[i] -= prev.ReadLatSum[i]
		d.ReadCount[i] -= prev.ReadCount[i]
		d.WriteLatSum[i] -= prev.WriteLatSum[i]
		d.WriteCount[i] -= prev.WriteCount[i]
	}
	d.Invalidations -= prev.Invalidations
	d.WriteBacks -= prev.WriteBacks
	d.Recalls -= prev.Recalls
	d.Pageouts -= prev.Pageouts
	d.DiskFaults -= prev.DiskFaults
	d.Injections -= prev.Injections
	d.InjectionHops -= prev.InjectionHops
	d.Overflows -= prev.Overflows
	d.Upgrades -= prev.Upgrades
	d.FirstTouches -= prev.FirstTouches
	d.Scans -= prev.Scans
	d.ScanLines -= prev.ScanLines
	d.CrisisPauses -= prev.CrisisPauses
	return d
}

// Thread carries per-thread time accounting for the Figure 6 breakdown.
type Thread struct {
	Busy     sim.Time // instruction execution (Processor)
	MemStall sim.Time // stalled waiting for loads/stores (Memory)
	SyncSpin sim.Time // spinning at barriers/locks (counted as Processor)
	Finish   sim.Time // local clock at completion
	Ops      uint64
	Loads    uint64
	Stores   uint64
}

// Breakdown is a run's execution-time split normalized the way Figure 6
// reports it: total wall time, with the Memory component being the average
// per-thread memory stall and Processor the remainder (busy + sync spin +
// load imbalance).
type Breakdown struct {
	Exec      sim.Time
	Memory    sim.Time
	Processor sim.Time
}

// NewBreakdown derives a Breakdown from per-thread accounting.
func NewBreakdown(threads []Thread) Breakdown {
	if len(threads) == 0 {
		return Breakdown{}
	}
	var exec sim.Time
	var memSum sim.Time
	for i := range threads {
		if threads[i].Finish > exec {
			exec = threads[i].Finish
		}
		memSum += threads[i].MemStall
	}
	mem := memSum / sim.Time(len(threads))
	proc := exec - mem
	return Breakdown{Exec: exec, Memory: mem, Processor: proc}
}
