// Package cpu models the paper's processors (Table 1): 4-issue 1 GHz
// superscalars with up to 32 outstanding memory accesses of which 16 may be
// loads, a 32-entry write buffer, and blocking behaviour only on dependent
// loads. Threads execute an operation stream (compute bursts, loads, stores,
// synchronization) against a coherence engine, tracking the Figure 6 time
// breakdown: memory stall vs. processor time, with synchronization spin
// counted as processor time (§4.1).
package cpu

import (
	"fmt"

	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
	"pimdsm/internal/stats"
)

// Memory is the coherence engine a processor drives. All three architecture
// engines (AGG, NUMA, COMA) implement it.
type Memory interface {
	Access(now sim.Time, p int, addr uint64, write bool) (sim.Time, proto.LatClass)
}

// Scanner runs a computation-in-memory scan (§2.4): traverse lines lines
// starting at addr at the region's home D-node on behalf of processor p,
// returning only selected records. Only the AGG engine provides one.
type Scanner interface {
	Scan(now sim.Time, p int, addr uint64, lines int, selectedBytes uint64) sim.Time
}

// OpKind enumerates workload operations.
type OpKind uint8

const (
	// OpCompute executes N cycles of instructions.
	OpCompute OpKind = iota
	// OpLoad reads Addr. Indep marks it overlappable with outstanding loads.
	OpLoad
	// OpStore writes Addr through the write buffer.
	OpStore
	// OpBarrier joins a global barrier with N participants.
	OpBarrier
	// OpAcquire takes the queue lock at Addr.
	OpAcquire
	// OpRelease releases the lock at Addr.
	OpRelease
	// OpPhase marks an application phase boundary (N is the phase number).
	OpPhase
	// OpScan asks the home D-node to scan N lines at Addr, shipping back
	// SelBytes of selected records (computation in memory, §2.4).
	OpScan
)

// Op is one workload operation.
type Op struct {
	Kind     OpKind
	Addr     uint64
	N        uint32 // cycles / participants / phase id / scan lines
	SelBytes uint32 // OpScan: selected bytes returned
	Indep    bool   // OpLoad: independent of other outstanding loads
}

// Stream supplies a thread's operations lazily.
type Stream interface {
	Next() (Op, bool)
}

// SliceStream adapts a fixed []Op to a Stream; handy in tests.
type SliceStream struct {
	Ops []Op
	i   int
}

// Next pops the next op.
func (s *SliceStream) Next() (Op, bool) {
	if s.i >= len(s.Ops) {
		return Op{}, false
	}
	op := s.Ops[s.i]
	s.i++
	return op, true
}

// Params sets the processor's structural limits.
type Params struct {
	LoadBuffer  int      // max outstanding loads (16)
	WriteBuffer int      // max outstanding stores (32)
	IssueCycles sim.Time // per memory op issue cost on the 4-issue core
}

// DefaultParams returns Table 1's values.
func DefaultParams() Params {
	return Params{LoadBuffer: 16, WriteBuffer: 32, IssueCycles: 1}
}

// PhaseHook observes phase-boundary crossings: thread id, phase number, time.
type PhaseHook func(thread, phase int, at sim.Time)

// Thread is one simulated application thread bound to a P-node. It
// implements sim.Thread.
type Thread struct {
	id     int
	clock  sim.Time
	mem    Memory
	scan   Scanner
	stream Stream
	sync   *SyncDomain
	par    Params

	outstanding []sim.Time // completion times of in-flight loads
	wbuf        []sim.Time // completion times of buffered stores

	retry    *Op // op to re-execute after an Unpark (lock hand-off)
	parkedAt sim.Time

	phaseHook PhaseHook
	st        stats.Thread
	measureT0 sim.Time
}

// NewThread builds a thread. scan may be nil for machines without
// computation-in-memory support; executing an OpScan then panics.
func NewThread(id int, mem Memory, scan Scanner, stream Stream, sync *SyncDomain, par Params) *Thread {
	return &Thread{id: id, mem: mem, scan: scan, stream: stream, sync: sync, par: par}
}

// SetPhaseHook registers a phase-boundary observer.
func (t *Thread) SetPhaseHook(h PhaseHook) { t.phaseHook = h }

// ID implements sim.Thread.
func (t *Thread) ID() int { return t.id }

// Clock implements sim.Thread.
func (t *Thread) Clock() sim.Time { return t.clock }

// Resume implements sim.Thread: spin time while parked counts as processor
// time (the paper's "spinning for synchronization").
func (t *Thread) Resume(at sim.Time) {
	if at > t.clock {
		t.st.SyncSpin += at - t.clock
		t.clock = at
	}
}

// Stats returns the thread's accounting relative to the last measurement
// reset.
func (t *Thread) Stats() stats.Thread {
	s := t.st
	s.Finish = t.clock - t.measureT0
	return s
}

// ResetMeasurement zeroes accounting so warm-up (e.g. parallel data
// initialization) is excluded from reported numbers.
func (t *Thread) ResetMeasurement() {
	t.st = stats.Thread{}
	t.measureT0 = t.clock
}

// drainLoadsUntil waits until fewer than limit loads are outstanding,
// charging the wait as memory stall.
func (t *Thread) drainLoadsUntil(limit int) {
	for len(t.outstanding) >= limit {
		earliest := 0
		for i := range t.outstanding {
			if t.outstanding[i] < t.outstanding[earliest] {
				earliest = i
			}
		}
		if done := t.outstanding[earliest]; done > t.clock {
			t.st.MemStall += done - t.clock
			t.clock = done
		}
		t.outstanding[earliest] = t.outstanding[len(t.outstanding)-1]
		t.outstanding = t.outstanding[:len(t.outstanding)-1]
	}
}

// pruneCompleted drops already-completed accesses.
func prune(buf []sim.Time, now sim.Time) []sim.Time {
	out := buf[:0]
	for _, d := range buf {
		if d > now {
			out = append(out, d)
		}
	}
	return out
}

// waitAllLoads blocks until every outstanding load completes (a dependent
// consumer), charging memory stall.
func (t *Thread) waitAllLoads() {
	var last sim.Time
	for _, d := range t.outstanding {
		if d > last {
			last = d
		}
	}
	t.outstanding = t.outstanding[:0]
	if last > t.clock {
		t.st.MemStall += last - t.clock
		t.clock = last
	}
}

// drainWriteBuffer blocks until every buffered store retires (memory
// barrier at synchronization points).
func (t *Thread) drainWriteBuffer() {
	var last sim.Time
	for _, d := range t.wbuf {
		if d > last {
			last = d
		}
	}
	t.wbuf = t.wbuf[:0]
	if last > t.clock {
		t.st.MemStall += last - t.clock
		t.clock = last
	}
}

// Step implements sim.Thread: execute one operation.
func (t *Thread) Step() sim.Status {
	var op Op
	if t.retry != nil {
		op = *t.retry
		t.retry = nil
	} else {
		var ok bool
		op, ok = t.stream.Next()
		if !ok {
			// Program end: outstanding work must land.
			t.waitAllLoads()
			t.drainWriteBuffer()
			return sim.Done
		}
	}
	t.st.Ops++

	switch op.Kind {
	case OpCompute:
		t.clock += sim.Time(op.N)
		t.st.Busy += sim.Time(op.N)

	case OpLoad:
		t.st.Loads++
		t.outstanding = prune(t.outstanding, t.clock)
		if !op.Indep {
			t.waitAllLoads()
			done, _ := t.mem.Access(t.clock, t.id, op.Addr, false)
			t.st.MemStall += done - t.clock
			t.clock = done
			break
		}
		t.drainLoadsUntil(t.par.LoadBuffer)
		done, _ := t.mem.Access(t.clock, t.id, op.Addr, false)
		t.clock += t.par.IssueCycles
		t.st.Busy += t.par.IssueCycles
		if done > t.clock {
			t.outstanding = append(t.outstanding, done)
		}

	case OpStore:
		t.st.Stores++
		t.wbuf = prune(t.wbuf, t.clock)
		for len(t.wbuf) >= t.par.WriteBuffer {
			earliest := 0
			for i := range t.wbuf {
				if t.wbuf[i] < t.wbuf[earliest] {
					earliest = i
				}
			}
			if d := t.wbuf[earliest]; d > t.clock {
				t.st.MemStall += d - t.clock
				t.clock = d
			}
			t.wbuf[earliest] = t.wbuf[len(t.wbuf)-1]
			t.wbuf = t.wbuf[:len(t.wbuf)-1]
		}
		done, _ := t.mem.Access(t.clock, t.id, op.Addr, true)
		t.clock += t.par.IssueCycles
		t.st.Busy += t.par.IssueCycles
		if done > t.clock {
			t.wbuf = append(t.wbuf, done)
		}

	case OpBarrier:
		t.waitAllLoads()
		t.drainWriteBuffer()
		if t.sync == nil {
			panic("cpu: barrier without a sync domain")
		}
		if released := t.sync.barrierArrive(t.id, int(op.N), t.clock); !released {
			return sim.Parked
		}

	case OpAcquire:
		t.waitAllLoads()
		t.drainWriteBuffer()
		if t.sync == nil {
			panic("cpu: lock without a sync domain")
		}
		lk := t.sync.lock(op.Addr)
		if lk.holder == t.id {
			// Hand-off after a park: the lock is already ours; pay the
			// RMW that observes it.
			done, _ := t.mem.Access(t.clock, t.id, op.Addr, true)
			t.st.SyncSpin += done - t.clock
			t.clock = done
			break
		}
		if lk.holder >= 0 {
			lk.queue = append(lk.queue, t.id)
			op := op
			t.retry = &op
			return sim.Parked
		}
		lk.holder = t.id
		done, _ := t.mem.Access(t.clock, t.id, op.Addr, true)
		t.st.SyncSpin += done - t.clock
		t.clock = done

	case OpRelease:
		t.drainWriteBuffer()
		if t.sync == nil {
			panic("cpu: lock without a sync domain")
		}
		t.sync.release(op.Addr, t.id, t.clock)

	case OpPhase:
		t.waitAllLoads()
		t.drainWriteBuffer()
		if t.phaseHook != nil {
			t.phaseHook(t.id, int(op.N), t.clock)
		}

	case OpScan:
		t.waitAllLoads()
		t.drainWriteBuffer()
		if t.scan == nil {
			panic("cpu: OpScan on a machine without computation-in-memory support")
		}
		done := t.scan.Scan(t.clock, t.id, op.Addr, int(op.N), uint64(op.SelBytes))
		t.st.MemStall += done - t.clock
		t.clock = done

	default:
		panic(fmt.Sprintf("cpu: unknown op kind %d", op.Kind))
	}
	return sim.Runnable
}
