package cpu

import (
	"fmt"

	"pimdsm/internal/sim"
)

// SyncDomain coordinates barriers and queue locks among the threads of one
// application run. Blocked threads are parked in the scheduler and woken by
// the releasing thread; time spent parked is accounted as synchronization
// spin (processor time in the paper's breakdown).
type SyncDomain struct {
	sched *sim.Scheduler
	locks map[uint64]*lockState

	barWaiting []int
	barLast    sim.Time

	// BarrierExit is the fixed cost each thread pays to leave a barrier
	// (the release broadcast of a tree barrier).
	BarrierExit sim.Time

	Barriers uint64 // completed barrier episodes
	LockOps  uint64 // acquire operations
}

type lockState struct {
	holder int
	queue  []int
}

// NewSyncDomain builds a domain whose wakeups go through sched.
func NewSyncDomain(sched *sim.Scheduler) *SyncDomain {
	return &SyncDomain{
		sched:       sched,
		locks:       make(map[uint64]*lockState),
		BarrierExit: 100,
	}
}

// barrierArrive records a thread at the barrier. It returns false if the
// thread must park; the last arriver releases everyone and continues.
func (s *SyncDomain) barrierArrive(id, participants int, at sim.Time) bool {
	if participants <= 0 {
		panic("cpu: barrier with no participants")
	}
	if at > s.barLast {
		s.barLast = at
	}
	if len(s.barWaiting)+1 < participants {
		s.barWaiting = append(s.barWaiting, id)
		return false
	}
	release := s.barLast + s.BarrierExit
	for _, w := range s.barWaiting {
		s.sched.Unpark(w, release)
	}
	s.barWaiting = s.barWaiting[:0]
	s.barLast = 0
	s.Barriers++
	return true
}

// lock returns the lock state for addr, creating it free.
func (s *SyncDomain) lock(addr uint64) *lockState {
	lk, ok := s.locks[addr]
	if !ok {
		lk = &lockState{holder: -1}
		s.locks[addr] = lk
	}
	s.LockOps++
	return lk
}

// release frees the lock at addr, handing it directly to the next waiter.
func (s *SyncDomain) release(addr uint64, id int, at sim.Time) {
	lk, ok := s.locks[addr]
	if !ok || lk.holder != id {
		panic(fmt.Sprintf("cpu: thread %d releasing lock %#x it does not hold", id, addr))
	}
	if len(lk.queue) > 0 {
		next := lk.queue[0]
		lk.queue = lk.queue[1:]
		lk.holder = next
		s.sched.Unpark(next, at)
		return
	}
	lk.holder = -1
}
