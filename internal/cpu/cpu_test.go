package cpu

import (
	"testing"

	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
)

// fakeMem completes every access after a fixed latency, optionally
// serializing through a bank.
type fakeMem struct {
	lat      sim.Time
	accesses int
	bank     *sim.Resource
}

func (f *fakeMem) Access(now sim.Time, p int, addr uint64, write bool) (sim.Time, proto.LatClass) {
	f.accesses++
	if f.bank != nil {
		start := f.bank.Acquire(now, f.lat)
		return start + f.lat, proto.LatMem
	}
	return now + f.lat, proto.LatMem
}

func run1(t *testing.T, mem Memory, ops []Op) *Thread {
	t.Helper()
	sched := sim.NewScheduler()
	th := NewThread(0, mem, nil, &SliceStream{Ops: ops}, NewSyncDomain(sched), DefaultParams())
	sched.Add(th)
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	return th
}

func TestComputeAdvancesBusy(t *testing.T) {
	th := run1(t, &fakeMem{lat: 10}, []Op{{Kind: OpCompute, N: 100}, {Kind: OpCompute, N: 50}})
	s := th.Stats()
	if th.Clock() != 150 || s.Busy != 150 || s.MemStall != 0 {
		t.Fatalf("clock=%d busy=%d stall=%d", th.Clock(), s.Busy, s.MemStall)
	}
}

func TestDependentLoadExposesFullLatency(t *testing.T) {
	th := run1(t, &fakeMem{lat: 300}, []Op{{Kind: OpLoad, Addr: 0}})
	s := th.Stats()
	if th.Clock() != 300 || s.MemStall != 300 {
		t.Fatalf("clock=%d stall=%d, want 300/300", th.Clock(), s.MemStall)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	// 8 independent 300-cycle loads: issue 1/cycle, all overlap; final
	// drain at stream end waits for the last (issued at 7, done at 307).
	ops := make([]Op, 8)
	for i := range ops {
		ops[i] = Op{Kind: OpLoad, Addr: uint64(i * 128), Indep: true}
	}
	th := run1(t, &fakeMem{lat: 300}, ops)
	if th.Clock() != 307 {
		t.Fatalf("clock=%d, want 307 (overlapped)", th.Clock())
	}
	s := th.Stats()
	// Sequential would be 2400; overlap must slash the stall.
	if s.MemStall >= 400 {
		t.Fatalf("stall=%d, want < 400", s.MemStall)
	}
}

func TestLoadBufferLimitThrottles(t *testing.T) {
	// 20 independent loads with a 16-entry load buffer: issues 17..20 must
	// wait for earlier completions.
	ops := make([]Op, 20)
	for i := range ops {
		ops[i] = Op{Kind: OpLoad, Addr: uint64(i * 128), Indep: true}
	}
	th := run1(t, &fakeMem{lat: 1000}, ops)
	s := th.Stats()
	if s.MemStall == 0 {
		t.Fatal("no stall despite exceeding the load buffer")
	}
	// Completion: the 20th load issues after ~4 earlier loads completed
	// (~1000+), finishes ~2000s; far below sequential 20000.
	if th.Clock() >= 5000 {
		t.Fatalf("clock=%d, want MLP-limited (< 5000)", th.Clock())
	}
}

func TestDependentLoadWaitsForOutstanding(t *testing.T) {
	ops := []Op{
		{Kind: OpLoad, Addr: 0, Indep: true},
		{Kind: OpLoad, Addr: 128}, // dependent: must wait for the first
	}
	th := run1(t, &fakeMem{lat: 200}, ops)
	// First issues at 0 (done 200); dependent waits to 200, then 200 more.
	if th.Clock() != 400 {
		t.Fatalf("clock=%d, want 400", th.Clock())
	}
}

func TestWriteBufferHidesStores(t *testing.T) {
	ops := make([]Op, 10)
	for i := range ops {
		ops[i] = Op{Kind: OpStore, Addr: uint64(i * 128)}
	}
	th := run1(t, &fakeMem{lat: 300}, ops)
	s := th.Stats()
	// Stores are buffered: stall only at final drain.
	if s.MemStall >= 350 {
		t.Fatalf("store stall=%d, want only the final drain", s.MemStall)
	}
}

func TestWriteBufferFullStalls(t *testing.T) {
	par := DefaultParams()
	par.WriteBuffer = 2
	sched := sim.NewScheduler()
	ops := make([]Op, 6)
	for i := range ops {
		ops[i] = Op{Kind: OpStore, Addr: uint64(i * 128)}
	}
	th := NewThread(0, &fakeMem{lat: 500}, nil, &SliceStream{Ops: ops}, NewSyncDomain(sched), par)
	sched.Add(th)
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Stats().MemStall == 0 {
		t.Fatal("no stall with a full write buffer")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	sched := sim.NewScheduler()
	sd := NewSyncDomain(sched)
	mem := &fakeMem{lat: 10}
	mk := func(id int, work uint32) *Thread {
		return NewThread(id, mem, nil, &SliceStream{Ops: []Op{
			{Kind: OpCompute, N: work},
			{Kind: OpBarrier, N: 3},
			{Kind: OpCompute, N: 10},
		}}, sd, DefaultParams())
	}
	ths := []*Thread{mk(0, 100), mk(1, 500), mk(2, 900)}
	for _, th := range ths {
		sched.Add(th)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	// All finish at lastArrival(900) + exit(100) + 10 = 1010, except the
	// last arriver which pays no exit broadcast wait in this model.
	for i, th := range ths[:2] {
		if th.Clock() != 1010 {
			t.Fatalf("thread %d clock=%d, want 1010", i, th.Clock())
		}
	}
	if ths[2].Clock() != 910 {
		t.Fatalf("last arriver clock=%d, want 910", ths[2].Clock())
	}
	// Early arrivers' spin counts as sync, not memory.
	s := ths[0].Stats()
	if s.SyncSpin != 900 || s.MemStall != 0 {
		t.Fatalf("thread 0 spin=%d stall=%d", s.SyncSpin, s.MemStall)
	}
	if sd.Barriers != 1 {
		t.Fatalf("barrier episodes=%d", sd.Barriers)
	}
}

func TestLockMutualExclusionAndHandoff(t *testing.T) {
	sched := sim.NewScheduler()
	sd := NewSyncDomain(sched)
	mem := &fakeMem{lat: 50}
	const lockAddr = 0x9000
	mk := func(id int) *Thread {
		return NewThread(id, mem, nil, &SliceStream{Ops: []Op{
			{Kind: OpAcquire, Addr: lockAddr},
			{Kind: OpCompute, N: 200}, // critical section
			{Kind: OpRelease, Addr: lockAddr},
		}}, sd, DefaultParams())
	}
	a, b, c := mk(0), mk(1), mk(2)
	sched.Add(a)
	sched.Add(b)
	sched.Add(c)
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	// Critical sections serialize: total ≈ 3 × (acquire 50 + cs 200 + release 50).
	clocks := []sim.Time{a.Clock(), b.Clock(), c.Clock()}
	maxC := clocks[0]
	for _, cl := range clocks {
		if cl > maxC {
			maxC = cl
		}
	}
	if maxC < 3*250 {
		t.Fatalf("lock did not serialize: max clock %d < 750", maxC)
	}
	if sd.LockOps == 0 {
		t.Fatal("no lock ops recorded")
	}
}

func TestReleaseWithoutHoldPanics(t *testing.T) {
	sched := sim.NewScheduler()
	sd := NewSyncDomain(sched)
	th := NewThread(0, &fakeMem{lat: 1}, nil, &SliceStream{Ops: []Op{
		{Kind: OpRelease, Addr: 0x1},
	}}, sd, DefaultParams())
	sched.Add(th)
	defer func() {
		if recover() == nil {
			t.Fatal("release of unheld lock did not panic")
		}
	}()
	_ = sched.Run()
}

func TestPhaseHook(t *testing.T) {
	var gotPhase int
	var gotAt sim.Time
	sched := sim.NewScheduler()
	th := NewThread(0, &fakeMem{lat: 1}, nil, &SliceStream{Ops: []Op{
		{Kind: OpCompute, N: 77},
		{Kind: OpPhase, N: 2},
	}}, NewSyncDomain(sched), DefaultParams())
	th.SetPhaseHook(func(_, phase int, at sim.Time) { gotPhase, gotAt = phase, at })
	sched.Add(th)
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if gotPhase != 2 || gotAt != 77 {
		t.Fatalf("phase hook got (%d,%d), want (2,77)", gotPhase, gotAt)
	}
}

func TestResetMeasurementExcludesWarmup(t *testing.T) {
	sched := sim.NewScheduler()
	th := NewThread(0, &fakeMem{lat: 100}, nil, &SliceStream{Ops: []Op{
		{Kind: OpLoad, Addr: 0},
	}}, NewSyncDomain(sched), DefaultParams())
	sched.Add(th)
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	th.ResetMeasurement()
	s := th.Stats()
	if s.MemStall != 0 || s.Finish != 0 {
		t.Fatalf("post-reset stats = %+v", s)
	}
}
