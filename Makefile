# Build, test and benchmark entry points. `make ci` is the tier-1 gate:
# build + vet + tests, as ROADMAP.md specifies.

GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

ci: build test
