# Build, test and benchmark entry points. `make ci` is the tier-1 gate:
# build + vet + tests, as ROADMAP.md specifies.

GO ?= go

.PHONY: build test race race-hot vet bench bench-smoke ci figures-output audit check-stats bench-json serve-smoke soak-smoke speedup-smoke telemetry-smoke tenant-smoke cluster-smoke bench-diff

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-hot covers the packages with real concurrency (the sweep pool sits in
# the root package; sim and hashmap are what the workers hammer; mesh hosts
# the partitioned event engine's workload).
race-hot:
	$(GO) test -race ./internal/sim ./internal/hashmap .

# speedup-smoke is the partitioned-engine gate, run under the race detector:
# a mid-size event-driven mesh at K=1 and K=4 must produce bit-identical
# delivery fingerprints and stats, and on a host with >= 4 cores K=4 must
# not be slower than K=1 (on fewer cores only the identity half asserts).
speedup-smoke:
	$(GO) test -race -count 1 -run 'TestEventsSpeedupSmoke' -v ./internal/mesh

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# bench-smoke runs each benchmark once — compile + one iteration, a CI-speed
# check that the benchmarks still work — then pins the profiler-disabled
# record paths at zero allocations (the alloc-regression gate).
bench-smoke:
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' ./...
	$(GO) test -run 'ZeroAlloc' ./internal/obs

ci: build vet test race-hot

# figures_output.txt is a build artifact (gitignored), regenerated on demand.
figures-output:
	$(GO) run ./cmd/figures -quick > figures_output.txt

# audit runs the per-transaction coherence auditor on one configuration per
# machine type; any protocol-invariant violation fails the target.
audit:
	$(GO) run ./cmd/aggsim -arch agg  -app ocean -scale 0.05 -threads 8 -pressure 0.75 -audit >/dev/null
	$(GO) run ./cmd/aggsim -arch numa -app ocean -scale 0.05 -threads 8 -pressure 0.75 -audit >/dev/null
	$(GO) run ./cmd/aggsim -arch coma -app ocean -scale 0.05 -threads 8 -pressure 0.75 -audit >/dev/null
	@echo "audit: all three machine types clean"

# check-stats is the perf-regression gate: the fixed baseline matrix must
# match testdata/golden_stats.json within per-metric tolerances, and the
# gate must itself catch an injected 5% latency regression (self-test).
# Regenerate the golden deliberately with `go run ./cmd/checkstats -update`.
check-stats:
	$(GO) run ./cmd/checkstats
	@if $(GO) run ./cmd/checkstats -inject 0.05 >/dev/null 2>&1; then \
		echo "check-stats: SELF-TEST FAILED - injected 5% regression not caught"; exit 1; \
	else echo "check-stats: self-test ok (injected 5% regression caught)"; fi

# serve-smoke is the aggsimd end-to-end gate, run under the race detector:
# boot the daemon on an ephemeral port, submit a small Figure 6 batch twice
# (the second must be served byte-identical from cache, proven by the
# engine-cycle counters), storm it at 4x the admission window (bounded-queue
# rejections), shut down gracefully, and restart against the persisted
# cache index.
serve-smoke:
	$(GO) test -race -count 1 -run 'TestServeSmoke|TestSmokeMetricsArtifact' ./cmd/aggsimd

# soak-smoke is the observability/SLO gate, run under the race detector: a
# concurrent client storm through the real daemon, audited by the soak
# harness — p99 submit/status latency SLOs, bounded 429 pushback, the
# exactly-once simulation proof from the engine counters, complete ordered
# lifecycle event chains for every job, and a /metrics.prom exposition that
# passes the strict Prometheus text parser.
soak-smoke:
	$(GO) test -race -count 1 -run 'TestSoakSmoke' -v ./cmd/aggsimd

# telemetry-smoke is the flight-recorder end-to-end gate, run under the race
# detector: every job head-sampled into the recorder, results byte-identical
# to a direct run (record-only proof), all three artifacts served over HTTP,
# the perf diff naming a dominant phase between two architectures, and the
# artifact store surviving a daemon restart.
telemetry-smoke:
	$(GO) test -race -count 1 -run 'TestTelemetrySmoke' -v ./cmd/aggsimd

# tenant-smoke is the multi-tenant end-to-end gate, run under the race
# detector: boot the daemon with a tenants file, reject unauthenticated and
# wrong-key requests (401) and over-ceiling priorities (403), prove quota
# isolation between a quota-bounded noisy tenant and a quiet one via the
# soak harness, check every per-tenant /metrics.prom family sums exactly to
# its global counterpart under the strict Prometheus parser, and restart the
# daemon against the persisted usage ledger.
tenant-smoke:
	$(GO) test -race -count 1 -run 'TestTenantSmoke|TestTenantFlagHygiene' -v ./cmd/aggsimd

# cluster-smoke is the multi-node gate, run under the race detector: a
# 3-node in-process cluster (gossip membership, consistent-hash ownership,
# replication, work stealing) byte-compared against a single-node reference,
# with the exactly-once proof (cluster-wide engine-run counters equal the
# distinct key count) held through a node kill and restart, and steal
# counters balancing at quiescence.
cluster-smoke:
	$(GO) test -race -count 1 -run 'TestCluster' -v ./internal/cluster/harness

# bench-json snapshots simulator wall-clock throughput into a dated JSON
# file; committing snapshots over time tracks the perf trajectory.
bench-json:
	$(GO) run ./cmd/benchjson > BENCH_$$(date +%Y%m%d).json
	@echo "wrote BENCH_$$(date +%Y%m%d).json"

# bench-diff renders the committed BENCH trajectory over the two newest
# snapshots. Advisory about perf by design (host throughput is machine-
# dependent) — only a missing or malformed snapshot fails the target.
bench-diff:
	@set -- $$(ls BENCH_*.json | sort | tail -2); \
	if [ $$# -lt 2 ]; then echo "bench-diff: need two committed BENCH_*.json snapshots"; exit 1; fi; \
	echo "bench-diff: $$1 -> $$2"; \
	$(GO) run ./cmd/pimdsm diff -bench $$1 $$2
