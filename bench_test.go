package pimdsm

// One benchmark per table and figure of the paper's evaluation section
// (DESIGN.md carries the experiment index). The benchmarks run reduced
// problem scales and application subsets so `go test -bench=.` completes in
// minutes; `cmd/figures` regenerates everything at the calibrated scale.
// Each benchmark reports the headline quantity of its figure as a custom
// metric so regressions in the *shape* (not just the runtime) are visible.

import (
	"testing"

	"pimdsm/internal/proto"
)

func benchOpts(apps ...string) Options {
	return Options{Scale: 0.25, Threads: 16, Apps: apps}
}

// BenchmarkTable2HandlerCosts measures this repository's actual protocol
// transaction implementations — the analogue of the paper running its
// handlers on an R10K — and reports the modeled (Table 2) costs alongside.
func BenchmarkTable2HandlerCosts(b *testing.B) {
	b.ReportAllocs()
	costs := proto.AGGCosts()
	b.ReportMetric(float64(costs.ReadLat), "model-read-lat")
	b.ReportMetric(float64(costs.ReadExOcc), "model-readex-occ")
	b.ReportMetric(float64(costs.WBOcc), "model-wb-occ")
	cfg := Config{Arch: AGG, App: App("fft", 0.05), Threads: 4, Pressure: 0.5, DRatio: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Workloads generates (and drains) every application's op
// streams — the workload-generator side of the harness.
func BenchmarkTable3Workloads(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Table3(Options{Scale: 0.25}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 regenerates the overall-performance comparison on a
// two-application subset and reports the AGG-vs-NUMA geomean ratios.
func BenchmarkFigure6(b *testing.B) {
	b.ReportAllocs()
	var rows []AppBars
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = Figure6(benchOpts("fft", "swim"))
		if err != nil {
			b.Fatal(err)
		}
	}
	agg75, coma75 := 0.0, 0.0
	for _, row := range rows {
		agg75 += row.Bars[4].Exec // 1/1AGG75
		coma75 += row.Bars[2].Exec
	}
	b.ReportMetric(agg75/float64(len(rows)), "AGG75/NUMA")
	b.ReportMetric(coma75/float64(len(rows)), "COMA75/NUMA")
}

// BenchmarkFigure7 derives the read-latency breakdown from a Figure 6 run
// and reports AGG's local-memory share (the paper's migration effect).
func BenchmarkFigure7(b *testing.B) {
	b.ReportAllocs()
	var f7 []Fig7Row
	for i := 0; i < b.N; i++ {
		rows, err := Figure6(benchOpts("swim"))
		if err != nil {
			b.Fatal(err)
		}
		f7 = Figure7(rows)
	}
	b.ReportMetric(f7[0].Bars[4].ByClass[proto.LatMem], "AGG75-mem-share")
}

// BenchmarkFigure8 regenerates the D-node census and reports the Dirty-in-P
// share at 75% pressure.
func BenchmarkFigure8(b *testing.B) {
	b.ReportAllocs()
	var bars []Fig8Bar
	var err error
	for i := 0; i < b.N; i++ {
		bars, err = Figure8(benchOpts("radix"))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bars[0].DirtyInP, "dirtyInP@75")
}

// BenchmarkFigure9 sweeps a small static-reconfigurability grid and reports
// the speedup from the 2&2 baseline to the best cell.
func BenchmarkFigure9(b *testing.B) {
	b.ReportAllocs()
	var apps []Fig9App
	var err error
	for i := 0; i < b.N; i++ {
		apps, err = Figure9(benchOpts("dbase"), []int{2, 8}, []int{2, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 1.0
	for _, c := range apps[0].Cells {
		if c.Exec < best {
			best = c.Exec
		}
	}
	b.ReportMetric(best, "best-cell")
}

// BenchmarkFigure10a runs the dynamic-reconfiguration experiment and
// reports dynamic time relative to the best static configuration.
func BenchmarkFigure10a(b *testing.B) {
	b.ReportAllocs()
	var r *ReconfigResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = RunReconfig(App("dbase", 0.25), 0.75, 8, 8, 14, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := r.StaticA()
	if r.StaticB() < best {
		best = r.StaticB()
	}
	b.ReportMetric(float64(r.Dynamic)/float64(best), "dynamic/best-static")
}

// BenchmarkFigure10b runs the computation-in-memory comparison and reports
// Opt's execution-time reduction.
func BenchmarkFigure10b(b *testing.B) {
	b.ReportAllocs()
	var pts []Fig10bPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = Figure10b(Options{Scale: 0.25}, [][2]int{{8, 8}})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(1-pts[0].Opt/pts[0].Plain), "opt-reduction-%")
}

// BenchmarkSingleRunAGG/NUMA/COMA time one standard run per architecture —
// the simulator's raw throughput.
func BenchmarkSingleRunAGG(b *testing.B)  { benchSingle(b, AGG) }
func BenchmarkSingleRunNUMA(b *testing.B) { benchSingle(b, NUMA) }
func BenchmarkSingleRunCOMA(b *testing.B) { benchSingle(b, COMA) }

func benchSingle(b *testing.B, arch Arch) {
	b.ReportAllocs()
	cfg := Config{Arch: arch, App: App("ocean", 0.25), Threads: 16, Pressure: 0.75, DRatio: 1}
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Breakdown.Exec), "sim-cycles")
	}
}
