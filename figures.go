package pimdsm

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pimdsm/internal/machine"
	"pimdsm/internal/proto"
)

// Options scopes a figure regeneration.
type Options struct {
	// Scale multiplies every application's problem size (default 1.0, the
	// calibrated size recorded in EXPERIMENTS.md).
	Scale float64
	// Threads is the number of application threads (default 32, as in the
	// paper).
	Threads int
	// Apps restricts the applications (default: all seven).
	Apps []string
	// Parallel bounds the number of simulations run concurrently (default:
	// one per CPU). Parallelism never changes results: each run is
	// deterministic given its Config.
	Parallel int
	// Shards is stamped into every run's Config.Shards (0 leaves it alone).
	// The machines' coherence path runs serially at any value — results are
	// bit-identical — so this is provenance recorded in each Result; the
	// partitioned engine parallelizes the event-driven mesh path (MeshScale).
	Shards int

	// Trace, when non-nil, receives every run's protocol events. Metrics,
	// when non-nil, accumulates every run's counters. Both observers are
	// single-writer, so setting either forces the runs serial (results are
	// unchanged — parallelism never affects them — only slower).
	Trace   *Trace
	Metrics *Metrics
	// Progress, when non-nil, is called after each run of a batch completes
	// (see Sweep.Progress).
	Progress func(done, total, i int)
}

// sweep returns the worker pool implied by the options.
func (o Options) sweep() Sweep {
	workers := o.Parallel
	if o.Trace != nil || o.Metrics != nil {
		workers = 1
	}
	return Sweep{Workers: workers, Progress: o.Progress}
}

// runMany stamps the options' observers and shard count into each config and
// runs the batch.
func (o Options) runMany(cfgs []Config) ([]*Result, error) {
	if o.Trace != nil || o.Metrics != nil {
		for i := range cfgs {
			cfgs[i].Trace = o.Trace
			cfgs[i].Metrics = o.Metrics
		}
	}
	if o.Shards != 0 {
		for i := range cfgs {
			cfgs[i].Shards = o.Shards
		}
	}
	return o.sweep().RunMany(cfgs)
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Threads == 0 {
		o.Threads = 32
	}
	if len(o.Apps) == 0 {
		o.Apps = Apps()
	}
	return o
}

// ReducedRatio returns the paper's per-application reduced D-node ratio
// (§4.1): FFT, Radix and Ocean put relatively more demands on the D-nodes
// and run with 1/2; the others run with 1/4.
func ReducedRatio(app string) int {
	switch app {
	case "fft", "radix", "ocean":
		return 2
	}
	return 4
}

// --- Figure 6: overall performance ---

// Bar is one stacked execution-time bar, normalized to the application's
// NUMA run (Exec = Memory + Processor).
type Bar struct {
	Label     string
	Exec      float64
	Memory    float64
	Processor float64
	Result    *Result
}

// AppBars is one application's group of bars.
type AppBars struct {
	App  string
	Bars []Bar
}

// figure6Labels are the configurations of Figure 6, in order. %d is the
// application's reduced ratio.
func figure6Configs(app string, opt Options) []struct {
	label string
	cfg   Config
} {
	r := ReducedRatio(app)
	spec := AppSpec{Name: app, Scale: opt.Scale}
	mk := func(arch Arch, pressure float64, dratio int) Config {
		return Config{Arch: arch, App: spec, Threads: opt.Threads, Pressure: pressure, DRatio: dratio}
	}
	return []struct {
		label string
		cfg   Config
	}{
		{"NUMA", mk(NUMA, 0.75, 0)},
		{"COMA25", mk(COMA, 0.25, 0)},
		{"COMA75", mk(COMA, 0.75, 0)},
		{"1/1AGG25", mk(AGG, 0.25, 1)},
		{"1/1AGG75", mk(AGG, 0.75, 1)},
		{fmt.Sprintf("1/%dAGG25", r), mk(AGG, 0.25, r)},
		{fmt.Sprintf("1/%dAGG75", r), mk(AGG, 0.75, r)},
	}
}

// Figure6 regenerates the paper's Figure 6: execution time of every
// application on NUMA, COMA and the AGG configurations at 25% and 75%
// memory pressure, normalized to NUMA and split into Memory and Processor
// time.
func Figure6(opt Options) ([]AppBars, error) {
	opt = opt.withDefaults()
	var out []AppBars
	for _, app := range opt.Apps {
		cs := figure6Configs(app, opt)
		cfgs := make([]Config, len(cs))
		for i := range cs {
			cfgs[i] = cs[i].cfg
		}
		results, err := opt.runMany(cfgs)
		if err != nil {
			return nil, err
		}
		numa := float64(results[0].Breakdown.Exec)
		bars := make([]Bar, len(cs))
		for i, res := range results {
			bars[i] = Bar{
				Label:     cs[i].label,
				Exec:      float64(res.Breakdown.Exec) / numa,
				Memory:    float64(res.Breakdown.Memory) / numa,
				Processor: float64(res.Breakdown.Processor) / numa,
				Result:    res,
			}
		}
		out = append(out, AppBars{App: app, Bars: bars})
	}
	return out, nil
}

// FormatFigure6 renders Figure 6 as a text table.
func FormatFigure6(rows []AppBars) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: execution time normalized to NUMA (Memory+Processor)\n")
	if len(rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-8s", "app")
	for _, bar := range rows[0].Bars {
		fmt.Fprintf(&b, " %12s", bar.Label)
	}
	fmt.Fprintf(&b, "\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-8s", row.App)
		for _, bar := range row.Bars {
			fmt.Fprintf(&b, " %5.2f(M%.2f)", bar.Exec, bar.Memory)
		}
		fmt.Fprintf(&b, "\n")
	}
	// Paper's headline: average reduction vs NUMA for COMA and 1/1AGG.
	avg := func(idx int) float64 {
		g := 1.0
		for _, row := range rows {
			g *= row.Bars[idx].Exec
		}
		return math.Pow(g, 1/float64(len(rows)))
	}
	fmt.Fprintf(&b, "geomean: ")
	for i, bar := range rows[0].Bars {
		fmt.Fprintf(&b, "%s=%.2f ", bar.Label, avg(i))
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}

// --- Figure 7: read latency breakdown ---

// Fig7Bar is one bar of Figure 7: the summed latency of every read in the
// program, split by satisfaction level and normalized to the application's
// NUMA total.
type Fig7Bar struct {
	Label   string
	ByClass [proto.NumLatClasses]float64
	Total   float64
}

// Fig7Row groups one application's Figure 7 bars.
type Fig7Row struct {
	App  string
	Bars []Fig7Bar
}

// Figure7 derives the Figure 7 data from Figure 6's runs (the paper builds
// both figures from the same experiments).
func Figure7(rows []AppBars) []Fig7Row {
	var out []Fig7Row
	for _, row := range rows {
		numa := float64(row.Bars[0].Result.Machine.TotalReadLat())
		r7 := Fig7Row{App: row.App}
		for _, bar := range row.Bars {
			fb := Fig7Bar{Label: bar.Label}
			for c := proto.LatClass(0); c < proto.NumLatClasses; c++ {
				fb.ByClass[c] = float64(bar.Result.Machine.ReadLatSum[c]) / numa
				fb.Total += fb.ByClass[c]
			}
			r7.Bars = append(r7.Bars, fb)
		}
		out = append(out, r7)
	}
	return out
}

// FormatFigure7 renders Figure 7 as a text table.
func FormatFigure7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: aggregate read latency by level, normalized to NUMA total\n")
	fmt.Fprintf(&b, "%-8s %-10s %8s %8s %8s %8s %8s %8s\n", "app", "config", "FLC", "SLC", "Memory", "2Hop", "3Hop", "total")
	for _, row := range rows {
		for _, bar := range row.Bars {
			fmt.Fprintf(&b, "%-8s %-10s", row.App, bar.Label)
			for c := proto.LatClass(0); c < proto.NumLatClasses; c++ {
				fmt.Fprintf(&b, " %8.3f", bar.ByClass[c])
			}
			fmt.Fprintf(&b, " %8.3f\n", bar.Total)
		}
	}
	return b.String()
}

// --- Figure 8: D-node memory utilization ---

// Fig8Bar classifies the machine's memory lines at the end of a run, with
// the total D-node storage normalized to 100 (the paper's dotted line).
type Fig8Bar struct {
	App       string
	Pressure  int // percent
	DirtyInP  float64
	SharedInP float64
	DNodeOnly float64
	Unused    float64
	Total     float64 // DirtyInP + SharedInP + DNodeOnly: lines in the system
}

// Figure8 regenerates Figure 8: the line-state census on the reduced-ratio
// AGG machine at 75%, 50% and 25% memory pressure. (The paper notes the
// D:P ratio barely matters for this experiment; it uses 1/4AGG.)
func Figure8(opt Options) ([]Fig8Bar, error) {
	opt = opt.withDefaults()
	var cfgs []Config
	var meta []Fig8Bar
	for _, app := range opt.Apps {
		for _, pr := range []float64{0.75, 0.50, 0.25} {
			cfgs = append(cfgs, Config{
				Arch: AGG, App: AppSpec{Name: app, Scale: opt.Scale},
				Threads: opt.Threads, Pressure: pr, DRatio: 4,
			})
			meta = append(meta, Fig8Bar{App: app, Pressure: int(pr*100 + 0.5)})
		}
	}
	results, err := opt.runMany(cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]Fig8Bar, len(results))
	for i, res := range results {
		bar := meta[i]
		c := res.Census
		norm := 100 / float64(c.SlotCap)
		bar.DirtyInP = float64(c.DirtyInP) * norm
		bar.SharedInP = float64(c.SharedInP) * norm
		bar.DNodeOnly = float64(c.DNodeOnly) * norm
		bar.Unused = float64(c.FreeSlots) * norm
		bar.Total = bar.DirtyInP + bar.SharedInP + bar.DNodeOnly
		out[i] = bar
	}
	return out, nil
}

// FormatFigure8 renders Figure 8 as a text table.
func FormatFigure8(bars []Fig8Bar) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: line states, normalized to total D-node storage = 100\n")
	fmt.Fprintf(&b, "%-8s %4s %10s %10s %10s %8s %7s\n", "app", "pres", "DirtyInP", "SharedInP", "DNodeOnly", "Unused", "lines")
	for _, bar := range bars {
		fmt.Fprintf(&b, "%-8s %3d%% %10.1f %10.1f %10.1f %8.1f %7.1f\n",
			bar.App, bar.Pressure, bar.DirtyInP, bar.SharedInP, bar.DNodeOnly, bar.Unused, bar.Total)
	}
	return b.String()
}

// --- Figure 9: static reconfigurability ---

// Fig9Cell is one (P, D) point of an application's Figure 9 surface,
// normalized to the 2P&2D configuration.
type Fig9Cell struct {
	P, D      int
	Exec      float64
	Memory    float64
	Processor float64
}

// Fig9App is one application's surface.
type Fig9App struct {
	App   string
	Cells []Fig9Cell
}

// Figure9 regenerates Figure 9: execution time under different numbers of
// P- and D-nodes, with the problem size and the total D-node memory fixed at
// the AGG75 2P&2D baseline and per-node memory constant (nodes are added,
// not resized). ps and ds default to the paper's powers of two up to 32.
func Figure9(opt Options, ps, ds []int) ([]Fig9App, error) {
	opt = opt.withDefaults()
	if len(ps) == 0 {
		ps = []int{2, 4, 8, 16, 32}
	}
	if len(ds) == 0 {
		ds = []int{2, 4, 8, 16, 32}
	}
	var out []Fig9App
	for _, app := range opt.Apps {
		spec := AppSpec{Name: app, Scale: opt.Scale}
		// AGG75 base at 2P&2D: per-node memory and total D-memory frozen.
		perNode, dTotal, err := machine.BaselineSizing(spec, 0.75)
		if err != nil {
			return nil, err
		}

		var cfgs []Config
		var cells []Fig9Cell
		for _, p := range ps {
			for _, d := range ds {
				cfgs = append(cfgs, Config{
					Arch: AGG, App: spec, Threads: p, Pressure: 0.75,
					DNodes:            d,
					PMemBytesOverride: perNode,
					DMemTotalOverride: dTotal,
				})
				cells = append(cells, Fig9Cell{P: p, D: d})
			}
		}
		results, err := opt.runMany(cfgs)
		if err != nil {
			return nil, err
		}
		var base float64
		for i, c := range cells {
			if c.P == ps[0] && c.D == ds[0] {
				base = float64(results[i].Breakdown.Exec)
			}
		}
		for i := range cells {
			bd := results[i].Breakdown
			cells[i].Exec = float64(bd.Exec) / base
			cells[i].Memory = float64(bd.Memory) / base
			cells[i].Processor = float64(bd.Processor) / base
		}
		out = append(out, Fig9App{App: app, Cells: cells})
	}
	return out, nil
}

// FormatFigure9 renders each application's surface as a P×D grid.
func FormatFigure9(apps []Fig9App) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: execution time vs #P and #D nodes, normalized to the first cell\n")
	for _, app := range apps {
		ps := sortedUnique(app.Cells, func(c Fig9Cell) int { return c.P })
		ds := sortedUnique(app.Cells, func(c Fig9Cell) int { return c.D })
		fmt.Fprintf(&b, "%s:\n        ", app.App)
		for _, d := range ds {
			fmt.Fprintf(&b, " D=%-5d", d)
		}
		fmt.Fprintf(&b, "\n")
		for _, p := range ps {
			fmt.Fprintf(&b, "  P=%-4d", p)
			for _, d := range ds {
				for _, c := range app.Cells {
					if c.P == p && c.D == d {
						fmt.Fprintf(&b, " %7.3f", c.Exec)
					}
				}
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	return b.String()
}

func sortedUnique(cells []Fig9Cell, key func(Fig9Cell) int) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range cells {
		if k := key(c); !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

// --- Figure 10(a): dynamic reconfiguration ---

// Figure10a runs the paper's dynamic reconfiguration experiment: Dbase with
// a 16&16 hash phase reconfigured to a 28&4 join phase.
func Figure10a(opt Options) (*ReconfigResult, error) {
	opt = opt.withDefaults()
	return RunReconfig(AppSpec{Name: "dbase", Scale: opt.Scale}, 0.75, 16, 16, 28, 4)
}

// FormatFigure10a renders the three Figure 10(a) bars.
func FormatFigure10a(r *ReconfigResult) string {
	var b strings.Builder
	norm := float64(r.StaticA())
	fmt.Fprintf(&b, "Figure 10(a): Dbase static vs dynamic reconfiguration (normalized to 16&16)\n")
	fmt.Fprintf(&b, "  16&16 static : %.3f (hash %.3f + join %.3f)\n",
		1.0, float64(r.Phase1A)/norm, float64(r.Phase2A)/norm)
	fmt.Fprintf(&b, "  28&4  static : %.3f (hash %.3f + join %.3f)\n",
		float64(r.StaticB())/norm, float64(r.Phase1B)/norm, float64(r.Phase2B)/norm)
	fmt.Fprintf(&b, "  dynamic      : %.3f (hash %.3f + reconf %.3f + join %.3f)\n",
		float64(r.Dynamic)/norm, float64(r.Phase1A)/norm, float64(r.Reconf)/norm, float64(r.Phase2B)/norm)
	best := r.StaticA()
	if r.StaticB() < best {
		best = r.StaticB()
	}
	fmt.Fprintf(&b, "  dynamic vs best static: %+.1f%% (lines moved %d, pages %d)\n",
		100*(float64(r.Dynamic)/float64(best)-1), r.LinesMoved, r.PagesMoved)
	return b.String()
}

// --- Figure 10(b): computation in memory ---

// Fig10bPoint compares Dbase Plain (P-nodes traverse the tables) and Opt
// (D-nodes traverse, §4.3) at one P&D configuration; values normalized to
// Plain at the first configuration.
type Fig10bPoint struct {
	P, D       int
	Plain, Opt float64
}

// Figure10b regenerates Figure 10(b) over the paper's P&D combinations.
func Figure10b(opt Options, combos [][2]int) ([]Fig10bPoint, error) {
	opt = opt.withDefaults()
	if len(combos) == 0 {
		combos = [][2]int{{2, 2}, {4, 4}, {8, 8}, {16, 16}, {28, 4}}
	}
	perNode, dTotal, err := machine.BaselineSizing(AppSpec{Name: "dbase", Scale: opt.Scale}, 0.75)
	if err != nil {
		return nil, err
	}

	var cfgs []Config
	for _, pd := range combos {
		for _, name := range []string{"dbase", "dbase-opt"} {
			cfgs = append(cfgs, Config{
				Arch: AGG, App: AppSpec{Name: name, Scale: opt.Scale},
				Threads: pd[0], Pressure: 0.75, DNodes: pd[1],
				PMemBytesOverride: perNode, DMemTotalOverride: dTotal,
			})
		}
	}
	results, err := opt.runMany(cfgs)
	if err != nil {
		return nil, err
	}
	base := float64(results[0].Breakdown.Exec)
	out := make([]Fig10bPoint, len(combos))
	for i, pd := range combos {
		out[i] = Fig10bPoint{
			P:     pd[0],
			D:     pd[1],
			Plain: float64(results[2*i].Breakdown.Exec) / base,
			Opt:   float64(results[2*i+1].Breakdown.Exec) / base,
		}
	}
	return out, nil
}

// FormatFigure10b renders Figure 10(b).
func FormatFigure10b(points []Fig10bPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10(b): Dbase Plain vs Opt (computation in memory), normalized to Plain at first config\n")
	fmt.Fprintf(&b, "%8s %8s %8s %10s\n", "P&D", "Plain", "Opt", "reduction")
	for _, pt := range points {
		red := 100 * (1 - pt.Opt/pt.Plain)
		fmt.Fprintf(&b, "%4d&%-3d %8.3f %8.3f %9.1f%%\n", pt.P, pt.D, pt.Plain, pt.Opt, red)
	}
	return b.String()
}
