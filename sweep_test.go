package pimdsm

import (
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// TestSweepDeterminism runs the same configurations several times through a
// concurrent Sweep and compares every Result — down to the per-thread stats
// and phase maps — against a serial reference run. Parallel regeneration is
// only sound if scheduling can never leak into the results.
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism check")
	}
	var cfgs []Config
	for _, arch := range []Arch{NUMA, COMA, AGG} {
		cfgs = append(cfgs, Config{
			Arch: arch, App: AppSpec{Name: "fft", Scale: 0.05},
			Threads: 8, Pressure: 0.75, DRatio: 2,
		})
	}
	// Duplicate each config so identical runs execute concurrently against
	// each other, not just against the serial reference.
	cfgs = append(cfgs, cfgs...)

	ref := make([]*Result, len(cfgs))
	for i, cfg := range cfgs {
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("serial run %d: %v", i, err)
		}
		ref[i] = r
	}
	for trial := 0; trial < 3; trial++ {
		got, err := Sweep{Workers: 2 * runtime.NumCPU()}.RunMany(cfgs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], ref[i]) {
				t.Fatalf("trial %d: concurrent result %d differs from serial reference", trial, i)
			}
		}
	}
}

// TestSweepBoundsWorkers checks that RunMany never has more simulations in
// flight than Workers allows (the former implementation spawned a goroutine
// per config before acquiring its semaphore slot, so a huge sweep created a
// huge number of goroutines).
func TestSweepBoundsWorkers(t *testing.T) {
	const limit = 2
	var inFlight, peak atomic.Int64
	block := make(chan struct{})
	orig := runSim
	runSim = func(cfg Config) (*Result, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		<-block // hold the worker so overlap, if any, is observable
		inFlight.Add(-1)
		return &Result{}, nil
	}
	defer func() { runSim = orig }()

	done := make(chan error, 1)
	go func() {
		_, err := Sweep{Workers: limit}.RunMany(make([]Config, 16))
		done <- err
	}()
	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("peak concurrent runs = %d, want <= %d", p, limit)
	}
}

// TestSweepErrorIsDeterministic checks that with several failing configs the
// reported error is the lowest-index one regardless of scheduling.
func TestSweepErrorIsDeterministic(t *testing.T) {
	cfgs := make([]Config, 8)
	for i := range cfgs {
		cfgs[i] = Config{
			Arch: AGG, App: AppSpec{Name: "radix", Scale: 0.02},
			Threads: 4, Pressure: 0.25, DRatio: 4,
		}
	}
	cfgs[3].App.Name = "no-such-app-3"
	cfgs[6].App.Name = "no-such-app-6"
	for trial := 0; trial < 4; trial++ {
		_, err := Sweep{Workers: 4}.RunMany(cfgs)
		if err == nil {
			t.Fatal("RunMany succeeded with invalid configs")
		}
		if !strings.Contains(err.Error(), "no-such-app-3") {
			t.Fatalf("trial %d: error %q does not name the lowest failing config", trial, err)
		}
	}
}
