package pimdsm

import (
	"fmt"
	"strings"

	"pimdsm/internal/obs"
)

// BottleneckRow is one configuration's profiled run: per-node cycle
// accounting, mesh-link utilization and the span-derived critical path.
type BottleneckRow struct {
	App   string
	Label string // figure 6 configuration label (NUMA, COMA75, 1/1AGG25, ...)
	Arch  Arch

	// Profile holds the run's full cycle-attribution tables; Crit names the
	// transaction phase (and the machine resource behind it) that bounds
	// end-to-end memory latency.
	Profile *Profile
	Crit    obs.CritPath
}

// Bottleneck runs the Figure 6 configurations of each selected application
// with a profiler and a span recorder attached and returns one row per
// configuration: where the machine's cycles go (per node, per handler class,
// per mesh link) and which resource bounds transaction latency.
//
// Each configuration gets its own recorders, so the runs parallelize like any
// other batch; recording never changes simulation results.
func Bottleneck(opt Options) ([]BottleneckRow, error) {
	opt = opt.withDefaults()
	var out []BottleneckRow
	for _, app := range opt.Apps {
		cs := figure6Configs(app, opt)
		cfgs := make([]Config, len(cs))
		profs := make([]*obs.Profile, len(cs))
		recs := make([]*obs.Spans, len(cs))
		for i := range cs {
			cfgs[i] = cs[i].cfg
			profs[i] = obs.NewProfile()
			recs[i] = obs.NewSpans(0)
			cfgs[i].Profile = profs[i]
			cfgs[i].Spans = recs[i]
		}
		if _, err := opt.runMany(cfgs); err != nil {
			return nil, err
		}
		for i := range cs {
			out = append(out, BottleneckRow{
				App: app, Label: cs[i].label, Arch: cfgs[i].Arch,
				Profile: profs[i], Crit: obs.CriticalPathOf(recs[i]),
			})
		}
	}
	return out, nil
}

// FormatBottleneck renders each row's full profiler report followed by its
// critical-path verdict.
func FormatBottleneck(rows []BottleneckRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Bottleneck analysis: cycle accounting and critical path per configuration\n\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "=== %s / %s ===\n", row.App, row.Label)
		row.Profile.WriteReport(&b)
		fmt.Fprintf(&b, "%s\n\n", row.Crit)
	}
	return b.String()
}
