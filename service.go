package pimdsm

import (
	"io"
	"log/slog"

	"pimdsm/internal/cluster"
	"pimdsm/internal/obs"
	"pimdsm/internal/obs/svclog"
	"pimdsm/internal/serve"
)

// The service layer (cmd/aggsimd) turns the simulator into a long-running
// daemon: jobs are batches of configurations, identical configurations are
// deduplicated through a content-addressed LRU result cache with
// singleflight collapsing of in-flight work, and a bounded admission window
// rejects excess submissions immediately instead of queueing without bound.
// See internal/serve for the subsystem and DESIGN.md §10 for the
// architecture.
type (
	// ServerOptions configures a simulation service.
	ServerOptions = serve.Options
	// Server is the simulation service: queue, workers, cache.
	Server = serve.Server
	// ServerStats is the service counters snapshot.
	ServerStats = serve.ServerStats
	// JobSpec is one service submission: a named, prioritized batch.
	JobSpec = serve.JobSpec
	// JobStatus is the wire snapshot of a submitted job.
	JobStatus = serve.JobStatus
	// ConfigSpec is the wire form of a Config: only the result-determining
	// fields, so it both addresses the cache and travels over HTTP.
	ConfigSpec = serve.ConfigSpec
	// ServiceAPI is the JSON/HTTP surface over a Server.
	ServiceAPI = serve.API
	// ServiceClient talks to an aggsimd daemon.
	ServiceClient = serve.Client
	// BusyError is the admission-control rejection, carrying a retry-after
	// hint (and, in tenant mode, which tenant and gate produced it).
	BusyError = serve.BusyError
	// ForbiddenError rejects an authenticated submission the tenant is not
	// authorized to make (priority above its ceiling).
	ForbiddenError = serve.ForbiddenError
	// Tenant is one registered identity in the multi-tenant service edge.
	Tenant = serve.Tenant
	// TenantRegistry is the service's tenant set: API-key authentication,
	// token buckets, quotas and usage accounting.
	TenantRegistry = serve.Tenants
	// TenantUsage is one tenant's resource-consumption counters.
	TenantUsage = serve.TenantUsage
	// TenantSnapshot is the wire view of one tenant (quotas, live state,
	// usage; never the key).
	TenantSnapshot = serve.TenantSnapshot
	// JobState is a job's lifecycle state.
	JobState = serve.JobState
	// JobEvent is one typed entry in a job's lifecycle event chain.
	JobEvent = svclog.JobEvent
	// JobEventKind names a lifecycle transition (submitted, started, ...).
	JobEventKind = svclog.JobEventKind
	// EventLog is the bounded in-memory lifecycle event log with live
	// subscriptions; hand one to ServerOptions.Events to enable tracing.
	EventLog = svclog.EventLog
	// SoakOptions configures a service load/soak run.
	SoakOptions = serve.SoakOptions
	// SoakReport is the outcome of a soak run: latency percentiles, admission
	// pushback counts and lifecycle-validation results.
	SoakReport = serve.SoakReport
	// ArtifactStore is the flight recorder's bounded on-disk artifact store.
	ArtifactStore = serve.ArtifactStore
	// ArtifactStats is the artifact store's counter snapshot.
	ArtifactStats = serve.ArtifactStats

	// The cluster layer (internal/cluster + DESIGN.md §15): N aggsimd
	// daemons form a named cluster via gossip membership, partition the
	// content-addressed key space with a consistent-hash ring, route work to
	// key owners, replicate hot results to ring successors, and steal queued
	// jobs when idle. Attach a node with Server.AttachCluster.
	// ClusterConfig configures one membership node (name, self, seeds,
	// replicas, timing).
	ClusterConfig = cluster.Config
	// ClusterNode is one member: membership table, ring, heartbeat loop.
	ClusterNode = cluster.Node
	// ClusterNodeStats is the membership node's counter snapshot.
	ClusterNodeStats = cluster.Stats
	// ClusterMember is one entry in a node's membership view.
	ClusterMember = cluster.Member
	// ClusterStats is the serve-layer cluster section of ServerStats.
	ClusterStats = serve.ClusterStats

	// The perf-diff engine (internal/obs/compare.go): RunDump gathers one
	// run's flight-recorder record, CompareRuns diffs two of them, and
	// BenchTimeline tracks the committed BENCH_*.json throughput trajectory.
	// ProfileSnapshot is the serializable cycle-attribution aggregate.
	ProfileSnapshot = obs.ProfileSnapshot
	// SpanBreakdown is the serializable per-phase latency decomposition.
	SpanBreakdown = obs.SpanBreakdown
	// RunDump bundles one run's telemetry for comparison.
	RunDump = obs.RunDump
	// CompareOptions sets the diff's significance thresholds.
	CompareOptions = obs.CompareOptions
	// CompareReport is the typed perf-diff report (JSON + WriteText).
	CompareReport = obs.CompareReport
	// BenchDoc is one parsed BENCH_<date>.json snapshot.
	BenchDoc = obs.BenchDoc
	// TimelineReport is the cross-snapshot throughput trajectory report.
	TimelineReport = obs.TimelineReport
)

// CompareRuns diffs two runs' phase decompositions, profiler buckets and
// metric registries, naming the dominant regressed phase. See obs.Compare.
func CompareRuns(a, b RunDump, opt CompareOptions) *CompareReport {
	return obs.Compare(a, b, opt)
}

// BenchTimeline folds parsed BENCH snapshots into per-(arch,app)
// trajectories with regression flagging. See obs.Timeline.
func BenchTimeline(docs []*BenchDoc, threshold float64) *TimelineReport {
	return obs.Timeline(docs, threshold)
}

// ParseBenchDoc parses one committed BENCH_<date>.json snapshot, tolerating
// both the 2026-08-05 schema (no shard/GOMAXPROCS provenance) and the full
// current one.
func ParseBenchDoc(data []byte) (*BenchDoc, error) { return obs.ParseBenchDoc(data) }

// Job lifecycle states.
const (
	JobQueued  JobState = serve.JobQueued
	JobRunning JobState = serve.JobRunning
	JobDone    JobState = serve.JobDone
	JobFailed  JobState = serve.JobFailed
	JobAborted JobState = serve.JobAborted
)

// NewEventLog returns a lifecycle event log retaining the last cap events
// globally (complete chains are kept per job); cap <= 0 picks the default.
func NewEventLog(cap int) *EventLog { return svclog.NewEventLog(cap) }

// NewClusterNode builds a cluster membership node from cfg (it does not
// start heartbeating until Server.AttachCluster). See cluster.New.
func NewClusterNode(cfg ClusterConfig) (*ClusterNode, error) { return cluster.New(cfg) }

// LoadTenants reads and validates a tenants file ({"tenants":[{...}]}),
// returning the registry to hand to ServerOptions.Tenants.
func LoadTenants(path string) (*TenantRegistry, error) { return serve.LoadTenants(path) }

// NewTenants builds a tenant registry from an in-memory tenant list (tests,
// embedded configuration). Same validation as LoadTenants.
func NewTenants(list []Tenant) (*TenantRegistry, error) { return serve.NewTenants(list) }

// ValidateLogLevel rejects a log-level string NewServiceLogger would fall
// back from: anything but "debug", "info", "warn", "error" or empty.
func ValidateLogLevel(level string) error {
	_, err := svclog.ParseLevel(level)
	return err
}

// NewServiceLogger builds the service's structured JSON logger. level is
// "debug", "info", "warn" or "error" (empty means info); deterministic drops
// wall-clock timestamps so log lines are byte-stable under test. An invalid
// level falls back to info.
func NewServiceLogger(w io.Writer, level string, deterministic bool) *slog.Logger {
	lv, err := svclog.ParseLevel(level)
	if err != nil {
		lv = slog.LevelInfo
	}
	return svclog.New(w, lv, deterministic)
}

// RunSoak storms a daemon with opt.Clients concurrent clients submitting
// opt.JobsPerClient jobs each, then audits the daemon's answers: latency
// SLOs, bounded admission pushback, exactly-once simulation and complete
// ordered lifecycle event chains. See internal/serve.RunSoak.
func RunSoak(addr string, opt SoakOptions) (*SoakReport, error) {
	return serve.RunSoak(addr, opt)
}

// NewServer starts a simulation service whose workers drain jobs through
// this package's Sweep pool, so the pool's determinism guarantee — a
// result depends only on its Config, never on scheduling — extends to every
// service response. sweepWorkers bounds the simulations one job runs
// concurrently (0 means one per CPU); opt.Workers bounds concurrent jobs.
func NewServer(opt ServerOptions, sweepWorkers int) (*Server, error) {
	if opt.Run == nil {
		opt.Run = func(cfgs []Config, onResult func(int, *Result)) ([]*Result, error) {
			return Sweep{Workers: sweepWorkers, OnResult: onResult}.RunMany(cfgs)
		}
	}
	return serve.New(opt)
}

// NewServiceAPI mounts the service's JSON/HTTP API; dash (may be nil) keeps
// serving the dashboard routes alongside it.
func NewServiceAPI(srv *Server, dash *Dashboard) *ServiceAPI {
	return serve.NewAPI(srv, dash)
}

// NewServiceClient returns a client for the aggsimd daemon at addr
// ("host:port" or a full URL).
func NewServiceClient(addr string) *ServiceClient { return serve.NewClient(addr) }

// SpecOfConfig extracts the wire/cache-key form of a config, dropping the
// record-only observer attachments.
func SpecOfConfig(cfg Config) ConfigSpec { return serve.SpecOf(cfg) }

// Figure6Specs returns the paper's Figure 6 configuration set for one
// application (NUMA, COMA and the AGG splits at 25% and 75% pressure) in
// wire form — the standard batch to submit to an aggsimd daemon.
func Figure6Specs(app string, threads int, scale float64) []ConfigSpec {
	cs := figure6Configs(app, Options{Threads: threads, Scale: scale}.withDefaults())
	out := make([]ConfigSpec, len(cs))
	for i := range cs {
		out[i] = serve.SpecOf(cs[i].cfg)
	}
	return out
}

// WriteFileAtomic writes an artifact via a temp file renamed into place, so
// a failed writer never truncates a previous good artifact.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	return obs.WriteFileAtomic(path, write)
}
