package pimdsm

import (
	"fmt"
	"strings"

	"pimdsm/internal/proto"
	"pimdsm/internal/workload"
)

// Table1 renders the architectural parameters actually used by the
// simulator (the paper's Table 1).
func Table1() string {
	t := proto.DefaultTiming(128)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: architectural parameters (cycles at 1 GHz, uncontended round trips)\n")
	fmt.Fprintf(&b, "  Write buffer        32-entry (stores retire in background)\n")
	fmt.Fprintf(&b, "  Load buffer         16-entry (independent loads overlap)\n")
	fmt.Fprintf(&b, "  On-chip L1          direct-mapped, 64 B lines, %d cycles\n", t.L1Lat)
	fmt.Fprintf(&b, "  On-chip L2          4-way, 64 B lines, %d cycles\n", t.L2Lat)
	fmt.Fprintf(&b, "  Memory line         128 B (coherence unit); bandwidth 32 B/cycle\n")
	fmt.Fprintf(&b, "  Local memory        on-chip %d / off-chip %d cycles, 4-way tagged\n", t.MemOnChip, t.MemOffChip)
	fmt.Fprintf(&b, "  Remote (uncontended, avg distance) ~298 (2-hop), ~383 (3-hop)\n")
	fmt.Fprintf(&b, "  Network             2D wormhole mesh, 2 B/cycle/link (AGG);\n")
	fmt.Fprintf(&b, "                      NUMA/COMA links doubled (equal bisection bandwidth)\n")
	fmt.Fprintf(&b, "  Pageout device      %d cycles per page\n", t.DiskLat)
	return b.String()
}

// Table2 renders the protocol-handler cost model (the paper's Table 2,
// measured on an R10K; BenchmarkTable2HandlerCosts additionally measures
// this repository's real Go handler implementations).
func Table2() string {
	agg := proto.AGGCosts()
	hw := agg.Scale(proto.HardwareScale)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: protocol handler latency/occupancy in cycles (AGG software; NUMA/COMA hardware = 70%%)\n")
	fmt.Fprintf(&b, "  %-16s %12s %24s\n", "handler", "latency", "occupancy")
	fmt.Fprintf(&b, "  %-16s %5d (%3d) %13d (%3d)\n", "Read", agg.ReadLat, hw.ReadLat, agg.ReadOcc, hw.ReadOcc)
	fmt.Fprintf(&b, "  %-16s %5d (%3d) %13d (%3d) + %d per inval\n", "Read Exclusive", agg.ReadExLat, hw.ReadExLat, agg.ReadExOcc, hw.ReadExOcc, agg.InvalPerNode)
	fmt.Fprintf(&b, "  %-16s %5d (%3d) %13d (%3d)\n", "Acknowledgment", agg.AckLat, hw.AckLat, agg.AckOcc, hw.AckOcc)
	fmt.Fprintf(&b, "  %-16s %5d (%3d) %13d (%3d)\n", "Write Back", agg.WBLat, hw.WBLat, agg.WBOcc, hw.WBOcc)
	return b.String()
}

// Table3 renders the applications and problem sizes in use (the paper's
// Table 3, with the scaled sizes this reproduction runs by default).
func Table3(opt Options) (string, error) {
	opt = opt.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: applications (scale %.2f)\n", opt.Scale)
	fmt.Fprintf(&b, "  %-8s %12s %8s %8s\n", "app", "footprint", "L1", "L2")
	for _, name := range opt.Apps {
		a, err := workload.New(AppSpec{Name: name, Scale: opt.Scale})
		if err != nil {
			return "", err
		}
		l1, l2 := a.Caches()
		fmt.Fprintf(&b, "  %-8s %9.1f MB %5d KB %5d KB\n",
			a.Name(), float64(a.Footprint())/(1<<20), l1>>10, l2>>10)
	}
	return b.String(), nil
}
