package pimdsm

import (
	"strings"
	"testing"
)

// Tests here exercise the public API end to end at tiny scales; the heavy
// figure regenerations live in bench_test.go and cmd/figures.

func TestRunPublicAPI(t *testing.T) {
	for _, arch := range []Arch{AGG, NUMA, COMA} {
		res, err := Run(Config{
			Arch: arch, App: App("ocean", 0.05), Threads: 4, Pressure: 0.5, DRatio: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		if res.Breakdown.Exec == 0 {
			t.Fatalf("%s: zero exec", arch)
		}
	}
}

func TestAppsList(t *testing.T) {
	apps := Apps()
	if len(apps) != 7 {
		t.Fatalf("Apps() = %v, want the paper's seven", apps)
	}
	for _, name := range apps {
		if _, err := Run(Config{Arch: NUMA, App: App(name, 0.05), Threads: 2, Pressure: 0.5}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestReducedRatio(t *testing.T) {
	// §4.1: FFT, Radix and Ocean run 1/2; the others 1/4.
	for app, want := range map[string]int{
		"fft": 2, "radix": 2, "ocean": 2,
		"barnes": 4, "swim": 4, "tomcatv": 4, "dbase": 4,
	} {
		if got := ReducedRatio(app); got != want {
			t.Errorf("ReducedRatio(%s) = %d, want %d", app, got, want)
		}
	}
}

func TestFigure6And7Small(t *testing.T) {
	opt := Options{Scale: 0.05, Threads: 4, Apps: []string{"ocean"}}
	rows, err := Figure6(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Bars) != 7 {
		t.Fatalf("fig6 shape: %d rows, %d bars", len(rows), len(rows[0].Bars))
	}
	if rows[0].Bars[0].Label != "NUMA" || rows[0].Bars[0].Exec != 1.0 {
		t.Fatalf("NUMA bar not normalized to 1: %+v", rows[0].Bars[0])
	}
	for _, bar := range rows[0].Bars {
		if bar.Exec <= 0 {
			t.Fatalf("bar %s: non-positive exec", bar.Label)
		}
		sum := bar.Memory + bar.Processor
		if diff := sum - bar.Exec; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("bar %s: Memory+Processor != Exec", bar.Label)
		}
	}
	txt := FormatFigure6(rows)
	if !strings.Contains(txt, "ocean") || !strings.Contains(txt, "geomean") {
		t.Fatalf("fig6 text missing pieces:\n%s", txt)
	}

	f7 := Figure7(rows)
	if len(f7) != 1 || len(f7[0].Bars) != 7 {
		t.Fatal("fig7 shape wrong")
	}
	if f7[0].Bars[0].Total < 0.999 || f7[0].Bars[0].Total > 1.001 {
		t.Fatalf("NUMA fig7 total = %v, want 1.0", f7[0].Bars[0].Total)
	}
	if !strings.Contains(FormatFigure7(f7), "2Hop") {
		t.Fatal("fig7 text missing class headers")
	}
}

func TestFigure8Small(t *testing.T) {
	bars, err := Figure8(Options{Scale: 0.05, Threads: 4, Apps: []string{"radix"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 3 {
		t.Fatalf("want 3 pressures, got %d", len(bars))
	}
	// More pressure => more lines per unit of D storage.
	if !(bars[0].Total > bars[2].Total) {
		t.Fatalf("75%% total (%v) not above 25%% total (%v)", bars[0].Total, bars[2].Total)
	}
	// At 25% pressure the D-memories have plenty of unused space (paper:
	// "an average of 75% of the memory in D-nodes is unused" at 25%).
	if bars[2].Unused < bars[0].Unused {
		t.Fatalf("unused at 25%% (%v) below unused at 75%% (%v)", bars[2].Unused, bars[0].Unused)
	}
	if !strings.Contains(FormatFigure8(bars), "DirtyInP") {
		t.Fatal("fig8 text missing headers")
	}
}

func TestFigure9Small(t *testing.T) {
	apps, err := Figure9(Options{Scale: 0.05, Apps: []string{"ocean"}}, []int{2, 4}, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 || len(apps[0].Cells) != 4 {
		t.Fatal("fig9 shape wrong")
	}
	if apps[0].Cells[0].Exec != 1.0 {
		t.Fatalf("base cell not normalized: %+v", apps[0].Cells[0])
	}
	if !strings.Contains(FormatFigure9(apps), "P=2") {
		t.Fatal("fig9 text missing grid")
	}
}

func TestFigure10aSmall(t *testing.T) {
	r, err := RunReconfig(App("dbase", 0.05), 0.75, 4, 4, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dynamic != r.Phase1A+r.Reconf+r.Phase2B {
		t.Fatal("dynamic time not assembled correctly")
	}
	if !strings.Contains(FormatFigure10a(r), "dynamic") {
		t.Fatal("fig10a text missing")
	}
}

func TestFigure10bSmall(t *testing.T) {
	pts, err := Figure10b(Options{Scale: 0.1}, [][2]int{{2, 2}, {4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Plain != 1.0 {
		t.Fatalf("fig10b shape: %+v", pts)
	}
	for _, pt := range pts {
		if pt.Opt >= pt.Plain {
			t.Fatalf("computation in memory did not help at %d&%d: plain %v opt %v",
				pt.P, pt.D, pt.Plain, pt.Opt)
		}
	}
	if !strings.Contains(FormatFigure10b(pts), "reduction") {
		t.Fatal("fig10b text missing")
	}
}

func TestTables(t *testing.T) {
	if s := Table1(); !strings.Contains(s, "Local memory") {
		t.Fatal("table1 missing content")
	}
	if s := Table2(); !strings.Contains(s, "Read Exclusive") {
		t.Fatal("table2 missing content")
	}
	s, err := Table3(Options{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "dbase") {
		t.Fatal("table3 missing apps")
	}
}
