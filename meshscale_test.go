package pimdsm

import (
	"strings"
	"testing"
)

// TestMeshScale: the experiment cross-checks every partitioned run against
// its K=1 oracle internally (MeshScale errors on divergence), so this just
// exercises a small sweep and the table rendering.
func TestMeshScale(t *testing.T) {
	pts, err := MeshScale([]int{8}, 4, 4_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 { // K = 1, 2, 4
		t.Fatalf("got %d points, want 3: %+v", len(pts), pts)
	}
	for _, p := range pts {
		if !p.Identical {
			t.Fatalf("K=%d not identical to oracle", p.Shards)
		}
		if p.Stats.Delivered == 0 || p.Events == 0 {
			t.Fatalf("K=%d empty run: %+v", p.Shards, p)
		}
		if p.Shards > 1 && p.CrossShard == 0 {
			t.Fatalf("K=%d exchanged no cross-shard messages", p.Shards)
		}
	}
	out := FormatMeshScale(pts)
	for _, want := range []string{"8x8", "identical", "true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "false") {
		t.Fatalf("table reports a divergent row:\n%s", out)
	}
}
