// Package pimdsm is a from-scratch reproduction of "Toward a Cost-Effective
// DSM Organization That Exploits Processor-Memory Integration" (Torrellas,
// Yang, Nguyen — HPCA 2000).
//
// It provides an execution-driven simulator of the paper's AGG architecture
// — a cache-coherent DSM built from commodity Processor-In-Memory chips with
// tagged local memories organized as caches and software directory nodes
// (D-nodes) — together with the CC-NUMA and Flat COMA baselines, synthetic
// versions of the seven evaluation applications, and experiment drivers that
// regenerate every table and figure of the paper's evaluation section.
//
// Quick start:
//
//	res, err := pimdsm.Run(pimdsm.Config{
//	        Arch:     pimdsm.AGG,
//	        App:      pimdsm.App("fft", 1.0),
//	        Threads:  32,
//	        Pressure: 0.75,
//	        DRatio:   1,
//	})
//
// The per-figure drivers (Figure6, Figure7, …, Table2) each return
// structured data plus a formatted text rendering; cmd/figures regenerates
// everything from the command line.
package pimdsm

import (
	"io"

	"pimdsm/internal/machine"
	"pimdsm/internal/obs"
	"pimdsm/internal/sim"
	"pimdsm/internal/workload"
)

// Arch selects the simulated architecture.
type Arch = machine.Arch

// The three organizations of the paper's evaluation (§3).
const (
	AGG  Arch = machine.AGG
	NUMA Arch = machine.NUMA
	COMA Arch = machine.COMA
)

// Config describes one simulation run. See machine.Config for field
// documentation.
type Config = machine.Config

// Result carries a run's measurements.
type Result = machine.Result

// AppSpec selects and scales one of the benchmark applications:
// fft, radix, ocean, barnes, swim, tomcatv, dbase, dbase-opt.
type AppSpec = workload.Spec

// Time is simulated time in CPU cycles (1 GHz: also nanoseconds).
type Time = sim.Time

// App builds an application spec. Scale 1.0 is the calibrated default size;
// 0 means 1.0.
func App(name string, scale float64) AppSpec {
	return AppSpec{Name: name, Scale: scale}
}

// Apps lists the seven applications in the paper's order (Table 3).
func Apps() []string { return workload.Names() }

// Run executes one simulation.
func Run(cfg Config) (*Result, error) { return machine.Run(cfg) }

// Trace is a fixed-capacity ring buffer of typed protocol events. Set one on
// Config.Trace (or Options.Trace) to record a run; recording never changes
// simulation results. See internal/obs for the event taxonomy.
type Trace = obs.Trace

// Metrics is a registry of named counters, gauges and latency histograms.
// Set one on Config.Metrics (or Options.Metrics) to accumulate run counters.
type Metrics = obs.Registry

// NewTrace returns a trace ring holding up to capacity events (rounded up to
// a power of two; 0 means 65536). When full, the oldest events are dropped.
func NewTrace(capacity int) *Trace { return obs.NewTrace(capacity) }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// WriteChromeTrace writes t in Chrome trace_event JSON format — loadable in
// chrome://tracing or https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, t *Trace) error { return t.WriteChromeJSON(w) }

// WriteBinaryTrace writes t in the compact PDT1 binary format (40 bytes per
// event); `pimdsm trace dump` pretty-prints it.
func WriteBinaryTrace(w io.Writer, t *Trace) error { return t.WriteBinary(w) }

// Spans records one transaction span per memory access with per-phase cycle
// attribution (issue, request trip, directory occupancy, owner fetch, reply
// trip, retirement). Set one on Config.Spans to record a run; like Trace,
// recording never changes simulation results. See internal/obs for the phase
// taxonomy and Decompose for the aggregated report.
type Spans = obs.Spans

// SpanPhase names one leg of a transaction's critical path.
type SpanPhase = obs.Phase

// NumSpanPhases is the number of span phases.
const NumSpanPhases = obs.NumPhases

// NewSpans returns an enabled span recorder keeping the most recent `keep`
// retired spans (rounded up to a power of two; 0 means 4096) alongside full
// aggregate tables.
func NewSpans(keep int) *Spans { return obs.NewSpans(keep) }

// WriteBinarySpans writes a recorder in the compact PDS1 binary format;
// `pimdsm spans dump` pretty-prints it.
func WriteBinarySpans(w io.Writer, s *Spans) error { return s.WriteBinary(w) }

// Profile is the sim-time accounting profiler: per-node cycle attribution by
// protocol handler class, P-node busy/stall buckets, mesh-link utilization
// with queue-depth samples, and folded-stack flamegraph export. Set one on
// Config.Profile (or Options.Profile) to record a run; like Trace and Spans,
// recording never changes simulation results.
type Profile = obs.Profile

// NewProfile returns an enabled profiler; node and mesh tables are sized
// automatically when a run attaches it.
func NewProfile() *Profile { return obs.NewProfile() }

// WriteFoldedProfile writes p's cycle attribution as collapsed stacks — the
// folded format consumed by speedscope, inferno and flamegraph.pl.
func WriteFoldedProfile(w io.Writer, p *Profile) error { return p.WriteFolded(w) }

// CriticalPath aggregates a span recorder and reports which transaction
// phase — and machine resource — bounds end-to-end latency.
func CriticalPath(s *Spans) obs.CritPath { return obs.CriticalPathOf(s) }

// Dashboard serves live run state over HTTP: pre-rendered text sections plus
// expvar and pprof. See Dashboard.ListenAndServe and the -http flag on
// cmd/aggsim and cmd/figures.
type Dashboard = obs.Dashboard

// NewDashboard returns an empty dashboard.
func NewDashboard() *Dashboard { return obs.NewDashboard() }

// StatusLine returns a Sweep/Options progress callback that renders a live
// status line to w (normally os.Stderr).
func StatusLine(w io.Writer, label string) func(done, total, i int) {
	return obs.StatusLine(w, label)
}

// ReconfigCosts is the §4.2 dynamic-reconfiguration overhead model.
type ReconfigCosts = machine.ReconfigCosts

// ReconfigResult reports the Figure 10(a) experiment.
type ReconfigResult = machine.ReconfigResult

// RunReconfig runs phase 1 on (aP, aD), reconfigures, and runs phase 2 on
// (bP, bD), charging the paper's overhead model.
func RunReconfig(app AppSpec, pressure float64, aP, aD, bP, bD int) (*ReconfigResult, error) {
	return machine.RunReconfig(app, pressure, aP, aD, bP, bD, machine.DefaultReconfigCosts())
}

// TuneResult reports the §2.3 static-tuning procedure.
type TuneResult = machine.TuneResult

// TuneDRatio profiles an application on a wasteful 1/1 AGG machine and uses
// the recorded D-node processor utilization as the paper's hint for how many
// D-nodes subsequent runs should request (§2.3). targetUtil 0 means 0.5.
func TuneDRatio(app AppSpec, pressure float64, threads int, targetUtil float64) (*TuneResult, error) {
	return machine.TuneDRatio(app, pressure, threads, targetUtil)
}

// SplitPoint is one P&D division of a fixed machine (the paper's Figure 4).
type SplitPoint = machine.SplitPoint

// OptimalSplit evaluates P&D divisions of a fixed machine size and returns
// the evaluated points plus the index of the fastest.
func OptimalSplit(app AppSpec, pressure float64, total, minP int) ([]SplitPoint, int, error) {
	return machine.OptimalSplit(app, pressure, total, minP, nil)
}
