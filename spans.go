package pimdsm

import (
	"fmt"
	"strings"

	"pimdsm/internal/obs"
	"pimdsm/internal/proto"
)

// PhaseRow is one configuration's miss-latency decomposition: the average
// cycles per retired transaction attributed to each phase of the critical
// path (issue, request trip, directory occupancy, owner fetch, reply trip,
// retirement). The per-phase averages sum to AvgLat because every span's
// buckets sum exactly to its end-to-end latency.
type PhaseRow struct {
	App   string
	Label string // figure 6 configuration label (NUMA, COMA75, 1/1AGG25, ...)
	Arch  Arch

	Retired uint64 // transactions folded into the averages
	Bad     uint64 // attribution failures (0 on a healthy engine)
	AvgLat  float64
	Phase   [obs.NumPhases]float64
	Queued  float64 // mesh link queueing overlay (inside the phases, not extra)

	// Spans is the run's full recorder, for per-(direction, class) detail
	// beyond the aggregated row.
	Spans *Spans
}

// Decompose runs the Figure 6 configurations of each selected application
// with a span recorder attached and returns one aggregated phase-breakdown
// row per configuration — the paper's Figure 6/7 "where do the cycles go"
// question answered per protocol phase rather than per satisfaction level.
//
// Each configuration gets its own recorder, so the runs parallelize like any
// other batch; recording never changes simulation results.
func Decompose(opt Options) ([]PhaseRow, error) {
	opt = opt.withDefaults()
	var out []PhaseRow
	for _, app := range opt.Apps {
		cs := figure6Configs(app, opt)
		cfgs := make([]Config, len(cs))
		recs := make([]*obs.Spans, len(cs))
		for i := range cs {
			cfgs[i] = cs[i].cfg
			recs[i] = obs.NewSpans(0)
			cfgs[i].Spans = recs[i]
		}
		if _, err := opt.runMany(cfgs); err != nil {
			return nil, err
		}
		for i := range cs {
			out = append(out, phaseRow(app, cs[i].label, cfgs[i].Arch, recs[i]))
		}
	}
	return out, nil
}

// phaseRow aggregates a recorder over both directions and all satisfaction
// classes into one averaged row.
func phaseRow(app, label string, arch Arch, s *obs.Spans) PhaseRow {
	row := PhaseRow{App: app, Label: label, Arch: arch,
		Retired: s.Retired(), Bad: s.Bad(), Spans: s}
	if row.Retired == 0 {
		return row
	}
	n := float64(row.Retired)
	for _, wr := range [2]bool{false, true} {
		for c := proto.LatClass(0); c < proto.NumLatClasses; c++ {
			for p := obs.Phase(0); p < obs.NumPhases; p++ {
				v := float64(s.PhaseCycles(wr, c, p)) / n
				row.Phase[p] += v
				row.AvgLat += v
			}
			row.Queued += float64(s.QueuedCycles(wr, c)) / n
		}
	}
	return row
}

// FormatDecompose renders the decomposition as a text table, one row per
// (application, configuration).
func FormatDecompose(rows []PhaseRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Miss-latency decomposition: avg cycles per memory transaction, by phase\n")
	fmt.Fprintf(&b, "%-8s %-10s %10s %8s", "app", "config", "count", "avg-lat")
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		fmt.Fprintf(&b, " %9s", p)
	}
	fmt.Fprintf(&b, " %9s\n", "queued")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-8s %-10s %10d %8.1f", row.App, row.Label, row.Retired, row.AvgLat)
		for p := obs.Phase(0); p < obs.NumPhases; p++ {
			fmt.Fprintf(&b, " %9.1f", row.Phase[p])
		}
		fmt.Fprintf(&b, " %9.1f", row.Queued)
		if row.Bad > 0 {
			fmt.Fprintf(&b, "  [%d BAD]", row.Bad)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
