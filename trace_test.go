package pimdsm

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"pimdsm/internal/obs"
)

// fig6AGGConfig is Figure 6's 1/1AGG75 configuration at test scale.
func fig6AGGConfig() Config {
	return Config{
		Arch: AGG, App: AppSpec{Name: "ocean", Scale: 0.05},
		Threads: 16, Pressure: 0.75, DRatio: 1,
	}
}

// TestTracingDoesNotChangeResults is the determinism regression: a run with
// tracing and metrics enabled must produce a bit-identical stats.Machine and
// breakdown to the same run with them off.
func TestTracingDoesNotChangeResults(t *testing.T) {
	plain, err := Run(fig6AGGConfig())
	if err != nil {
		t.Fatal(err)
	}

	cfg := fig6AGGConfig()
	cfg.Trace = NewTrace(1 << 18)
	cfg.Metrics = NewMetrics()
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Machine, traced.Machine) {
		t.Fatal("stats.Machine differs with tracing on")
	}
	if plain.Breakdown != traced.Breakdown {
		t.Fatalf("breakdown differs: %+v vs %+v", plain.Breakdown, traced.Breakdown)
	}
	if !reflect.DeepEqual(plain.Mesh, traced.Mesh) {
		t.Fatal("mesh stats differ with tracing on")
	}

	// And tracing itself is deterministic: run again, same event stream.
	cfg2 := fig6AGGConfig()
	cfg2.Trace = NewTrace(1 << 18)
	if _, err := Run(cfg2); err != nil {
		t.Fatal(err)
	}
	if cfg.Trace.Total() != cfg2.Trace.Total() {
		t.Fatalf("trace totals differ: %d vs %d", cfg.Trace.Total(), cfg2.Trace.Total())
	}
	if !reflect.DeepEqual(cfg.Trace.Events(), cfg2.Trace.Events()) {
		t.Fatal("trace event streams differ between identical runs")
	}
}

// TestTraceCountsStableAcrossWorkers runs the same batch at 1 and 4 sweep
// workers, giving every config its own trace, and requires identical
// per-config event counts — scheduling must not leak into observability.
func TestTraceCountsStableAcrossWorkers(t *testing.T) {
	mkCfgs := func() ([]Config, []*Trace) {
		apps := []string{"fft", "radix"}
		var cfgs []Config
		var traces []*Trace
		for _, app := range apps {
			for _, arch := range []Arch{AGG, NUMA} {
				tr := NewTrace(1 << 16)
				cfgs = append(cfgs, Config{
					Arch: arch, App: AppSpec{Name: app, Scale: 0.03},
					Threads: 8, Pressure: 0.75, DRatio: 1,
					Trace: tr,
				})
				traces = append(traces, tr)
			}
		}
		return cfgs, traces
	}

	counts := func(workers int) []uint64 {
		cfgs, traces := mkCfgs()
		if _, err := (Sweep{Workers: workers}).RunMany(cfgs); err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, len(traces))
		for i, tr := range traces {
			out[i] = tr.Total()
		}
		return out
	}

	serial, parallel := counts(1), counts(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("per-config trace totals differ across worker counts:\n 1 worker: %v\n 4 workers: %v", serial, parallel)
	}
	for i, n := range serial {
		if n == 0 {
			t.Fatalf("config %d emitted no events", i)
		}
	}
}

// TestRunTraceContents drives the acceptance criterion for `aggsim -trace`:
// the Figure 6 AGG run's trace must contain reads, writes, invalidations,
// write-backs and pageouts, exportable as loadable Chrome JSON in sim-time
// order.
func TestRunTraceContents(t *testing.T) {
	cfg := fig6AGGConfig()
	cfg.Trace = NewTrace(1 << 20)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, k := range []obs.EventKind{
		obs.EvRunStart, obs.EvRead, obs.EvWrite, obs.EvInval,
		obs.EvWriteBack, obs.EvPageout, obs.EvMsg, obs.EvPhase,
	} {
		if cfg.Trace.CountKind(k) == 0 {
			t.Errorf("no %v events in the Figure 6 AGG trace", k)
		}
	}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, cfg.Trace); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ts float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) != cfg.Trace.Len() {
		t.Fatalf("JSON has %d events, trace holds %d", len(doc.TraceEvents), cfg.Trace.Len())
	}
	for i := 1; i < len(doc.TraceEvents); i++ {
		if doc.TraceEvents[i].Ts < doc.TraceEvents[i-1].Ts {
			t.Fatalf("event %d out of sim-time order", i)
		}
	}
}

// TestMetricsMatchMachineCounters verifies the registry is an accounting of
// the run, not a parallel implementation that can drift.
func TestMetricsMatchMachineCounters(t *testing.T) {
	cfg := fig6AGGConfig()
	cfg.Metrics = NewMetrics()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := &res.Machine
	if v := cfg.Metrics.Counter("invalidations").Value(); v != m.Invalidations {
		t.Errorf("invalidations: metrics %d, machine %d", v, m.Invalidations)
	}
	if v := cfg.Metrics.Counter("pageouts").Value(); v != m.Pageouts {
		t.Errorf("pageouts: metrics %d, machine %d", v, m.Pageouts)
	}
	if v := cfg.Metrics.Counter("mesh.messages").Value(); v != res.Mesh.Messages {
		t.Errorf("mesh.messages: metrics %d, mesh %d", v, res.Mesh.Messages)
	}
	if v := cfg.Metrics.Gauge("run.exec_cycles").Value(); v != float64(res.Breakdown.Exec) {
		t.Errorf("run.exec_cycles: metrics %v, breakdown %d", v, res.Breakdown.Exec)
	}
}

// TestSweepProgressSerialized checks the progress callback sees every run
// exactly once with a monotone done count, in both pool shapes.
func TestSweepProgressSerialized(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfgs := make([]Config, 6)
		for i := range cfgs {
			cfgs[i] = Config{
				Arch: AGG, App: AppSpec{Name: "fft", Scale: 0.02},
				Threads: 4, Pressure: 0.75, DRatio: 1,
			}
		}
		var dones []int
		seen := make(map[int]bool)
		s := Sweep{Workers: workers, Progress: func(done, total, i int) {
			if total != len(cfgs) {
				t.Fatalf("total = %d, want %d", total, len(cfgs))
			}
			dones = append(dones, done)
			seen[i] = true
		}}
		if _, err := s.RunMany(cfgs); err != nil {
			t.Fatal(err)
		}
		if len(dones) != len(cfgs) || len(seen) != len(cfgs) {
			t.Fatalf("workers=%d: %d callbacks over %d indices", workers, len(dones), len(seen))
		}
		for i, d := range dones {
			if d != i+1 {
				t.Fatalf("workers=%d: done sequence %v not monotone", workers, dones)
			}
		}
	}
}
